//! Regenerates Fig. 1 (co-location / common-friend CDFs).

#![deny(missing_docs, dead_code)]
fn main() {
    let seed = seeker_bench::seed_from_env();
    seeker_bench::report::emit("fig1", &seeker_bench::experiments::fig1::fig1(seed));
}
