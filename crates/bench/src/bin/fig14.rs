//! Regenerates Fig. 14 (F1 vs hiding ratio).

#![deny(missing_docs, dead_code)]
fn main() {
    let seed = seeker_bench::seed_from_env();
    seeker_bench::report::emit("fig14", &seeker_bench::experiments::obfuscation::fig14(seed));
}
