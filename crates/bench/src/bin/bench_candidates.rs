//! Candidate-generation and incremental-refinement benchmark.
//!
//! Two measurements on a synthetic world, written to
//! `results/BENCH_candidates.json`:
//!
//! 1. **Candidate-universe reduction** — how far the STD cell index shrinks
//!    the quadratic pair universe (pairs sharing ≥ 1 cell vs `n·(n−1)/2`),
//!    plus the zero-JOC residue gate's verdict.
//! 2. **Per-iteration refine speedup** — the cost of bringing the composite
//!    features up to date after a converged-regime diff (1 changed edge, the
//!    steady state implied by the < 1 % convergence threshold): dirty-pair
//!    refresh via `changed_edges` + `influence_set` vs full recompute. The
//!    refreshed matrix is asserted bit-identical to the full recompute
//!    before any timing is reported.
//!
//! The refinement state for measurement 2 is the target's ground-truth
//! friendship graph. Refinement iterates on *predicted* social graphs, but
//! real social graphs — the paper's setting — are sparse (mean degree ≈ 5
//! here), and the attack's accuracy contract means a converged prediction is
//! sparse too. The tiny-world phase-1 calibration over-predicts, producing
//! an unrealistically dense G⁰ whose radius-(k−1) ball swallows the whole
//! graph; we still *count* the dirty pairs in that dense regime and record
//! the number as an honest worst case (`dense_g0_dirty_pairs`), where the
//! refresh degrades to a full recompute plus a cheap BFS.
//!
//! The end-to-end `infer` vs `infer_full` wall clock is a secondary,
//! expensive statistic (it dilutes the per-iteration win with the shared
//! first full pass and phase-1 work); opt in with `SEEKER_BENCH_E2E=1`.

#![deny(missing_docs, dead_code)]

use std::fmt::Write as _;
use std::time::Instant;

use friendseeker::features::{composite_feature, FeatureStore};
use friendseeker::pairs::all_pairs;
use seeker_bench::report::results_dir;
use seeker_graph::{changed_edges, influence_set, SocialGraph};
use seeker_trace::synth::{generate, SyntheticConfig};
use seeker_trace::UserPair;

/// Timing repetitions; the minimum is reported (least-noise statistic).
const REPS: usize = 3;

fn time_min<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.expect("REPS >= 1"))
}

/// Pair indices whose endpoints both lie in the radius-(k−1) influence set
/// of the `old` → `new` edge diff.
fn dirty_indices(pairs: &[UserPair], old: &SocialGraph, new: &SocialGraph, k: usize) -> Vec<usize> {
    let diff = changed_edges(old, new);
    let reach = influence_set(old, new, &diff, k.saturating_sub(1));
    pairs
        .iter()
        .enumerate()
        .filter(|(_, p)| reach[p.lo().index()] && reach[p.hi().index()])
        .map(|(i, _)| i)
        .collect()
}

fn main() {
    let _obs = seeker_obs::init_cli_sinks();
    let seed = seeker_bench::seed_from_env();
    eprintln!("bench_candidates: seed {seed}");

    let train = generate(&SyntheticConfig::small(seed)).expect("train world").dataset;
    // A larger target than the unit-test worlds: candidate pruning and
    // dirty-pair locality only have room to pay off when the k-hop ball
    // does not swallow the whole graph.
    let mut target_cfg = SyntheticConfig::small(seed + 1);
    target_cfg.n_users = 240;
    target_cfg.n_pois = 960;
    let target = generate(&target_cfg).expect("target world").dataset;

    let cfg = friendseeker::FriendSeekerConfig::fast();
    let k = cfg.k_hop;
    let trained = friendseeker::FriendSeeker::new(cfg).train(&train).expect("training");

    // -- 1. Candidate-universe reduction --------------------------------
    let universe =
        friendseeker::candidate_universe(trained.phase1(), &target).expect("universe fits");
    let n_total = universe.n_total;
    let n_candidates = universe.pairs.len() as u64;
    assert!(
        n_candidates < n_total,
        "candidate universe ({n_candidates}) must be smaller than all pairs ({n_total})"
    );
    eprintln!(
        "  candidates: {n_candidates} of {n_total} pairs ({:.1} % retained), \
         residue {} @ zero-JOC p={:.4} (fallback: {})",
        100.0 * universe.retained_fraction(),
        universe.n_residue,
        universe.residue_probability,
        universe.residue_predicted_friend
    );

    // -- 2. Per-iteration refresh: dirty-pair vs full recompute ---------
    let pairs = all_pairs(&target).expect("universe fits");
    let store = FeatureStore::build(trained.phase1(), &target, &pairs);
    let graph = SocialGraph::from_edges(target.n_users(), target.friendships());
    // Converged-regime diff: toggle one edge (< 1 % of edges by far).
    let mut next = graph.clone();
    let toggle = *pairs.first().expect("non-empty universe");
    if !next.add_edge(toggle) {
        next.remove_edge(toggle);
    }

    let (full_ms, full_feats) =
        time_min(|| seeker_par::par_map(&pairs, |&p| composite_feature(&next, p, k, &store)));

    let (incr_ms, incr_feats) = time_min(|| {
        let mut feats = seeker_par::par_map(&pairs, |&p| composite_feature(&graph, p, k, &store));
        let t0 = Instant::now();
        let dirty = dirty_indices(&pairs, &graph, &next, k);
        let fresh = seeker_par::par_map(&dirty, |&i| composite_feature(&next, pairs[i], k, &store));
        for (&i, f) in dirty.iter().zip(fresh) {
            feats[i] = f;
        }
        (t0.elapsed().as_secs_f64() * 1e3, dirty.len(), feats)
    });
    let (incr_refresh_ms, n_dirty, incr_feats) = incr_feats;
    let _ = incr_ms; // outer timing includes the baseline build; use the inner clock
    assert_eq!(full_feats, incr_feats, "dirty-pair refresh diverged from full recompute");
    let refresh_speedup = full_ms / incr_refresh_ms.max(1e-9);
    eprintln!(
        "  per-iteration refresh: full {full_ms:.1} ms vs dirty {incr_refresh_ms:.1} ms \
         ({n_dirty} of {} pairs dirty, {refresh_speedup:.1}x)",
        pairs.len()
    );

    // Worst case for the record: the same 1-edge diff against the dense
    // over-predicted G⁰, where the influence ball covers ~everything.
    let g0 = trained.phase1().predict_graph(&target, &pairs);
    let mut g0_next = g0.clone();
    if !g0_next.add_edge(toggle) {
        g0_next.remove_edge(toggle);
    }
    let dense_dirty = dirty_indices(&pairs, &g0, &g0_next, k).len();
    eprintln!("  dense-G0 worst case: {dense_dirty} of {} pairs dirty", pairs.len());

    // -- 3. End-to-end infer vs infer_full (secondary, opt-in) ----------
    let run_e2e = seeker_obs::env::flag("SEEKER_BENCH_E2E");
    let e2e = if run_e2e {
        let (e2e_fast_ms, fast) = time_min(|| trained.infer(&target).expect("infer"));
        let (e2e_full_ms, full) = time_min(|| trained.infer_full(&target).expect("infer_full"));
        assert_eq!(
            fast.final_graph(),
            full.final_graph(),
            "candidate + incremental inference diverged from the full reference"
        );
        eprintln!("  end-to-end: infer {e2e_fast_ms:.1} ms vs infer_full {e2e_full_ms:.1} ms");
        Some((e2e_fast_ms, e2e_full_ms))
    } else {
        eprintln!("  end-to-end: skipped (set SEEKER_BENCH_E2E=1 to run)");
        None
    };

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"candidate generation + incremental refinement\",");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"target_users\": {},", target.n_users());
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"universe\": {{");
    let _ = writeln!(json, "    \"all_pairs\": {n_total},");
    let _ = writeln!(json, "    \"candidates\": {n_candidates},");
    let _ = writeln!(json, "    \"residue\": {},", universe.n_residue);
    let _ = writeln!(json, "    \"retained_fraction\": {:.4},", universe.retained_fraction());
    let _ = writeln!(json, "    \"zero_joc_probability\": {:.6},", universe.residue_probability);
    let _ = writeln!(json, "    \"fallback_full\": {}", universe.residue_predicted_friend);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"per_iteration_refresh\": {{");
    let _ = writeln!(json, "    \"diff_edges\": 1,");
    let _ = writeln!(json, "    \"dirty_pairs\": {n_dirty},");
    let _ = writeln!(json, "    \"total_pairs\": {},", pairs.len());
    let _ = writeln!(json, "    \"dense_g0_dirty_pairs\": {dense_dirty},");
    let _ = writeln!(json, "    \"full_ms\": {full_ms:.3},");
    let _ = writeln!(json, "    \"incremental_ms\": {incr_refresh_ms:.3},");
    let _ = writeln!(json, "    \"speedup\": {refresh_speedup:.3}");
    let _ = writeln!(json, "  }},");
    match e2e {
        Some((fast_ms, full_ms)) => {
            let _ = writeln!(json, "  \"end_to_end\": {{");
            let _ = writeln!(json, "    \"infer_ms\": {fast_ms:.3},");
            let _ = writeln!(json, "    \"infer_full_ms\": {full_ms:.3}");
            let _ = writeln!(json, "  }}");
        }
        None => {
            let _ = writeln!(json, "  \"end_to_end\": null");
        }
    }
    let _ = writeln!(json, "}}");

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_candidates.json");
    std::fs::write(&path, json).expect("write BENCH_candidates.json");
    eprintln!("saved {}", path.display());
    seeker_obs::flush();
}
