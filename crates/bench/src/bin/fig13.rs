//! Regenerates Fig. 13 (F1 vs pair check-in volume) + sparse-friend recall.

#![deny(missing_docs, dead_code)]
fn main() {
    let seed = seeker_bench::seed_from_env();
    seeker_bench::report::emit("fig13", &seeker_bench::experiments::comparison::fig13(seed));
}
