//! Regenerates Fig. 11 (FriendSeeker vs baselines).

#![deny(missing_docs, dead_code)]
fn main() {
    let seed = seeker_bench::seed_from_env();
    seeker_bench::report::emit("fig11", &seeker_bench::experiments::comparison::fig11(seed));
}
