//! Regenerates Fig. 16 (F1 vs cross-grid blurring ratio).

#![deny(missing_docs, dead_code)]
fn main() {
    let seed = seeker_bench::seed_from_env();
    seeker_bench::report::emit("fig16", &seeker_bench::experiments::obfuscation::fig16(seed));
}
