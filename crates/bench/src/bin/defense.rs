//! Extension: targeted vs random hiding defense (the paper's future work).

#![deny(missing_docs, dead_code)]
fn main() {
    let seed = seeker_bench::seed_from_env();
    seeker_bench::report::emit(
        "defense",
        &seeker_bench::experiments::defense::defense_comparison(seed),
    );
}
