//! Regenerates Fig. 8 (performance vs tau).

#![deny(missing_docs, dead_code)]
fn main() {
    let seed = seeker_bench::seed_from_env();
    seeker_bench::report::emit("fig8", &seeker_bench::experiments::sweeps::fig8(seed));
}
