//! Serving benchmark: sustained ingest and query latency of the
//! `seeker-serve` TCP service, written to `results/BENCH_serve.json`.
//!
//! Per world size (default 1k and 10k users; `--smoke` runs 1k only) the
//! harness opens an incremental session on most of the world, starts a
//! loopback server, and measures over a real socket:
//!
//! - **sustained ingest**: the tail of the world streamed as fixed-size
//!   client batches, timed end to end through a final read barrier (a
//!   `stats` call flushes staged check-ins by contract), reported as
//!   check-ins/second — this is the price of the delta pipeline, not of a
//!   full rebuild per batch;
//! - **query latency**: client-observed `query_pair` round-trip times
//!   (p50/p99 microseconds and queries/second), each query landing on the
//!   post-ingest state;
//! - **snapshot**: blob size and save time for the full session.
//!
//! The attack is trained once with the `scale()` preset on a widened
//! region, exactly as `bench_scale` does — the division is frozen at
//! training time, so the targets must fall inside the trained bounding
//! box. Gate mode: when `SEEKER_BENCH_GATE` is a float (MiB), the process
//! exits non-zero if peak RSS exceeds it.

#![deny(missing_docs, dead_code)]

use std::fmt::Write as _;
use std::time::Instant;

use friendseeker::{FriendSeeker, FriendSeekerConfig, IncrementalAttack, IncrementalOptions};
use seeker_bench::report::results_dir;
use seeker_serve::{Client, ServeConfig, Server};
use seeker_trace::stream::StreamingWorld;
use seeker_trace::synth::SyntheticConfig;
use seeker_trace::CheckIn;

/// Measured world sizes.
const SIZES: [usize; 2] = [1_000, 10_000];
/// Check-ins per ingest frame on the wire.
const FRAME_CHECKINS: usize = 1_000;
/// Cap on the streamed tail (the rest of the world opens the session).
const MAX_STREAMED: usize = 20_000;
/// `query_pair` round-trips measured per size.
const N_QUERIES: usize = 400;

/// One size's measurements.
struct SizeReport {
    users: usize,
    checkins_total: usize,
    checkins_streamed: usize,
    ingest_frames: usize,
    open_ms: f64,
    ingest_ms: f64,
    ingest_checkins_per_s: f64,
    query_p50_us: u64,
    query_p99_us: u64,
    queries_per_s: f64,
    snapshot_ms: f64,
    snapshot_bytes: usize,
    n_edges: u64,
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    sorted[(sorted.len() - 1) * p / 100]
}

fn run_size(
    attack: &friendseeker::TrainedAttack,
    train_pois: &[seeker_trace::Poi],
    cfg: &SyntheticConfig,
) -> SizeReport {
    let target = StreamingWorld::build(cfg)
        .expect("target world")
        .materialize()
        .expect("target world")
        .dataset;
    // The session can only stream check-ins inside the trained observation
    // span; anything else belongs in the initial dataset.
    let slots = attack.phase1().division().slots();
    let (in_span, out_of_span): (Vec<CheckIn>, Vec<CheckIn>) =
        target.checkins().iter().partition(|c| slots.slot_of(c.time).is_some());
    let streamed = (in_span.len() / 20).min(MAX_STREAMED);
    let cut = in_span.len() - streamed;
    let mut head = out_of_span;
    head.extend_from_slice(&in_span[..cut]);
    let initial = target.with_checkins(head).expect("initial world");
    let tail = &in_span[cut..];

    let t0 = Instant::now();
    let engine = IncrementalAttack::new(attack.clone(), initial, IncrementalOptions::from_env())
        .expect("open session");
    let open_ms = t0.elapsed().as_secs_f64() * 1e3;

    let server =
        Server::start(engine, train_pois.to_vec(), ServeConfig::default()).expect("start server");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Sustained ingest: stream the tail, then one stats round-trip as the
    // read barrier that flushes whatever is still staged.
    let frames: Vec<&[CheckIn]> = tail.chunks(FRAME_CHECKINS).collect();
    let t0 = Instant::now();
    for frame in &frames {
        client.ingest(frame.to_vec()).expect("ingest frame");
    }
    let stats = client.stats().expect("stats barrier");
    let ingest_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(stats.n_checkins as usize, target.n_checkins(), "ingest lost check-ins");
    let ingest_checkins_per_s =
        if ingest_ms > 0.0 { tail.len() as f64 / (ingest_ms / 1e3) } else { f64::NAN };

    // Query latency: client-observed round-trips over a deterministic pair
    // sweep (every query is post-ingest state, no cache warmup excluded).
    let n_users = target.n_users() as u32;
    let mut lat_us: Vec<u64> = Vec::with_capacity(N_QUERIES);
    let t_q = Instant::now();
    for i in 0..N_QUERIES {
        let a = (i as u32 * 7919) % n_users;
        let b = (a + 1 + (i as u32 % 13)) % n_users;
        let (a, b) = if a == b { (a, (a + 1) % n_users) } else { (a, b) };
        let t0 = Instant::now();
        client.query_pair(a.min(b), a.max(b)).expect("query");
        lat_us.push(t0.elapsed().as_micros() as u64);
    }
    let query_wall_s = t_q.elapsed().as_secs_f64();
    lat_us.sort_unstable();
    let queries_per_s = if query_wall_s > 0.0 { N_QUERIES as f64 / query_wall_s } else { f64::NAN };

    let t0 = Instant::now();
    let blob = client.snapshot().expect("snapshot");
    let snapshot_ms = t0.elapsed().as_secs_f64() * 1e3;

    let report = SizeReport {
        users: target.n_users(),
        checkins_total: target.n_checkins(),
        checkins_streamed: tail.len(),
        ingest_frames: frames.len(),
        open_ms,
        ingest_ms,
        ingest_checkins_per_s,
        query_p50_us: percentile(&lat_us, 50),
        query_p99_us: percentile(&lat_us, 99),
        queries_per_s,
        snapshot_ms,
        snapshot_bytes: blob.len(),
        n_edges: stats.n_edges,
    };
    eprintln!(
        "  {} users: open {open_ms:.0} ms; ingest {} check-ins in {} frames at {:.0}/s; \
         query p50 {} us / p99 {} us ({:.0}/s); snapshot {} bytes in {snapshot_ms:.1} ms",
        report.users,
        report.checkins_streamed,
        report.ingest_frames,
        report.ingest_checkins_per_s,
        report.query_p50_us,
        report.query_p99_us,
        report.queries_per_s,
        report.snapshot_bytes,
    );

    client.shutdown().expect("shutdown");
    server.join();
    report
}

fn main() {
    let _obs = seeker_obs::init_cli_sinks();
    let seed = seeker_bench::seed_from_env();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let gate_mib: Option<f64> =
        seeker_obs::env::raw("SEEKER_BENCH_GATE").and_then(|g| g.parse().ok());
    let sizes: Vec<usize> = if smoke { vec![SIZES[0]] } else { SIZES.to_vec() };
    eprintln!("bench_serve: seed {seed}, sizes {sizes:?}{}", if smoke { " (smoke)" } else { "" });

    // Train exactly as bench_scale does: scale() preset, region widened to
    // the largest target so the frozen division covers every check-in.
    let largest = SIZES[SIZES.len() - 1];
    let mut train_cfg = SyntheticConfig::scale(1_000, seed);
    train_cfg.region_extent_km = SyntheticConfig::scale(largest, seed).region_extent_km;
    train_cfg.n_cities = 24;
    let t0 = Instant::now();
    let train = StreamingWorld::build(&train_cfg)
        .expect("train world")
        .materialize()
        .expect("train world")
        .dataset;
    let attack =
        FriendSeeker::new(FriendSeekerConfig::scale()).train(&train).expect("scale training");
    let train_ms = t0.elapsed().as_secs_f64() * 1e3;
    let train_pois = train.pois().to_vec();
    eprintln!("  trained on {} users in {train_ms:.0} ms", train.n_users());

    let mut reports: Vec<SizeReport> = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let cfg = SyntheticConfig::scale(n, seed + 1 + i as u64);
        reports.push(run_size(&attack, &train_pois, &cfg));
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ =
        writeln!(json, "  \"bench\": \"seeker-serve ingest/query/snapshot over loopback TCP\",");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"train_users\": {},", train.n_users());
    let _ = writeln!(json, "  \"train_ms\": {train_ms:.1},");
    let _ = writeln!(json, "  \"frame_checkins\": {FRAME_CHECKINS},");
    let _ = writeln!(json, "  \"n_queries\": {N_QUERIES},");
    let _ = writeln!(json, "  \"sizes\": [");
    for (i, r) in reports.iter().enumerate() {
        let comma = if i + 1 < reports.len() { "," } else { "" };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"users\": {},", r.users);
        let _ = writeln!(json, "      \"checkins_total\": {},", r.checkins_total);
        let _ = writeln!(json, "      \"checkins_streamed\": {},", r.checkins_streamed);
        let _ = writeln!(json, "      \"ingest_frames\": {},", r.ingest_frames);
        let _ = writeln!(json, "      \"open_ms\": {:.1},", r.open_ms);
        let _ = writeln!(json, "      \"ingest_ms\": {:.1},", r.ingest_ms);
        let _ = writeln!(json, "      \"ingest_checkins_per_s\": {:.1},", r.ingest_checkins_per_s);
        let _ = writeln!(json, "      \"query_p50_us\": {},", r.query_p50_us);
        let _ = writeln!(json, "      \"query_p99_us\": {},", r.query_p99_us);
        let _ = writeln!(json, "      \"queries_per_s\": {:.1},", r.queries_per_s);
        let _ = writeln!(json, "      \"snapshot_ms\": {:.1},", r.snapshot_ms);
        let _ = writeln!(json, "      \"snapshot_bytes\": {},", r.snapshot_bytes);
        let _ = writeln!(json, "      \"edges_predicted\": {}", r.n_edges);
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_serve.json");
    std::fs::write(&path, json).expect("write BENCH_serve.json");
    eprintln!("saved {}", path.display());

    if let Some(limit_mib) = gate_mib {
        let peak = seeker_obs::peak_rss_bytes().map_or(f64::NAN, |b| b as f64 / (1024.0 * 1024.0));
        if !(peak <= limit_mib) {
            eprintln!("bench_serve: GATE FAILED — peak RSS {peak:.0} MiB > {limit_mib:.0} MiB");
            seeker_obs::flush();
            std::process::exit(1);
        }
        eprintln!("bench_serve: gate ok — peak RSS {peak:.0} MiB <= {limit_mib:.0} MiB");
    }
    seeker_obs::flush();
}
