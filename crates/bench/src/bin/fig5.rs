//! Regenerates Fig. 5 (length-k path count separation).

#![deny(missing_docs, dead_code)]
fn main() {
    let seed = seeker_bench::seed_from_env();
    seeker_bench::report::emit("fig5", &seeker_bench::experiments::fig5::fig5(seed));
}
