//! Regenerates Table I (dataset statistics).
fn main() {
    let seed = seeker_bench::seed_from_env();
    seeker_bench::report::emit("table1", &seeker_bench::experiments::tables::table1(seed));
}
