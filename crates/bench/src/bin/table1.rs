//! Regenerates Table I (dataset statistics).

#![deny(missing_docs, dead_code)]
fn main() {
    let seed = seeker_bench::seed_from_env();
    seeker_bench::report::emit("table1", &seeker_bench::experiments::tables::table1(seed));
}
