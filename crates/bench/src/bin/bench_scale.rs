//! The 1k → 1M scale harness: wall time and peak memory per pipeline stage
//! on streaming-generated worlds, written to `results/BENCH_scale.json`.
//!
//! Per size (default 1k / 10k / 100k users; `--smoke` runs 1k only) the
//! harness times each stage of the sharded pipeline — streaming world
//! emission, dataset materialization, sharded candidate enumeration, and
//! sharded two-phase inference — and records the process peak RSS
//! (`seeker_obs::peak_rss_bytes`, the `VmHWM` high-water mark) after each
//! stage. The attack is trained **once**, on a 1000-user world whose region
//! is widened to cover every target's terrain: the spatial division is
//! frozen at training time, so a target check-in outside the trained
//! bounding box would silently fall out of the universe.
//!
//! Peak RSS is process-cumulative (the kernel high-water mark never
//! decreases), so sizes run ascending and the marginal growth between sizes
//! is the attributable cost of the larger world.
//!
//! The never-co-located residue gate is asserted *sound* here: on every
//! world of ≥ 10 000 users the zero-JOC fallback
//! (`attack.candidates.fallback_full`) must NOT engage — the scale preset
//! trains classifier `C` against enough zero-JOC negatives to reject the
//! residue, and this harness is the regression net for that property.
//!
//! The 1M point is extrapolated from the measured sizes by a log-log fit
//! unless `SEEKER_BENCH_1M=1` opts into measuring it. Gate mode: when
//! `SEEKER_BENCH_GATE` is set to a float (MiB), the process exits non-zero
//! if the final peak RSS exceeds it.

#![deny(missing_docs, dead_code)]

use std::fmt::Write as _;
use std::time::Instant;

use friendseeker::{candidate_universe_sharded, FriendSeeker, FriendSeekerConfig, TrainedAttack};
use seeker_bench::report::results_dir;
use seeker_trace::stream::StreamingWorld;
use seeker_trace::synth::SyntheticConfig;
use seeker_trace::Dataset;

/// Measured world sizes (ascending — see the peak-RSS note above).
const SIZES: [usize; 3] = [1_000, 10_000, 100_000];
/// The extrapolated (or measured, with `SEEKER_BENCH_1M=1`) headline size.
const ONE_MILLION: usize = 1_000_000;

/// Shard count policy: chunks of ~500 users' worth of work, at least 4.
fn shard_policy(n_users: usize) -> usize {
    (n_users / 500).max(4)
}

fn peak_mib() -> f64 {
    seeker_obs::peak_rss_bytes().map_or(f64::NAN, |b| b as f64 / (1024.0 * 1024.0))
}

/// One measured size's record.
struct SizeReport {
    users: usize,
    checkins: usize,
    n_shards: usize,
    build_ms: f64,
    stream_ms: f64,
    materialize_ms: f64,
    candidates_ms: f64,
    infer_ms: f64,
    all_pairs: u64,
    candidates: u64,
    retained_fraction: f64,
    fallback_full: bool,
    edges_predicted: usize,
    iterations: usize,
    peak_after_world_bytes: u64,
    peak_after_candidates_bytes: u64,
    peak_after_infer_bytes: u64,
}

fn run_size(attack: &TrainedAttack, cfg: &SyntheticConfig, n_shards: usize) -> SizeReport {
    // Stage 1: the O(users) skeleton (no check-in is materialized yet).
    let t0 = Instant::now();
    let world = StreamingWorld::build(cfg).expect("world skeleton");
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Stage 2: one full streaming pass, counting only — this is the memory
    // floor of consuming the world without a dataset.
    let t0 = Instant::now();
    let mut checkins = 0usize;
    world.for_each_checkin(|_, _, _| checkins += 1);
    let stream_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Stage 3: the attack needs random trajectory access, so materialize.
    let t0 = Instant::now();
    let target: Dataset = world.materialize().expect("materialize").dataset;
    let materialize_ms = t0.elapsed().as_secs_f64() * 1e3;
    drop(world);
    let peak_after_world_bytes = seeker_obs::peak_rss_bytes().unwrap_or(0);

    // Stage 4: sharded candidate enumeration.
    let t0 = Instant::now();
    let universe = candidate_universe_sharded(attack.phase1(), &target, n_shards)
        .expect("universe fits the platform");
    let candidates_ms = t0.elapsed().as_secs_f64() * 1e3;
    let peak_after_candidates_bytes = seeker_obs::peak_rss_bytes().unwrap_or(0);
    if target.n_users() >= 10_000 {
        assert!(
            !universe.residue_predicted_friend,
            "degenerate pruning gate: zero-JOC p={:.4} >= threshold on a {}-user world — \
             the scale-trained classifier must reject the never-co-located residue",
            universe.residue_probability,
            target.n_users()
        );
    }

    // Stage 5: sharded two-phase inference over the candidate universe
    // (enumeration is timed separately above, so call phase 2 directly).
    let t0 = Instant::now();
    let trace = attack.phase2().infer_sharded(
        attack.config(),
        attack.phase1(),
        &target,
        &universe.pairs,
        n_shards,
    );
    let infer_ms = t0.elapsed().as_secs_f64() * 1e3;
    let peak_after_infer_bytes = seeker_obs::peak_rss_bytes().unwrap_or(0);
    seeker_obs::gauge!("attack.scale.peak_bytes", peak_after_infer_bytes as f64);

    eprintln!(
        "  {} users / {checkins} check-ins / {n_shards} shards: build {build_ms:.0} ms, \
         stream {stream_ms:.0} ms, materialize {materialize_ms:.0} ms, candidates \
         {candidates_ms:.0} ms, infer {infer_ms:.0} ms; {} of {} pairs retained \
         ({:.4} %), {} edges, {} iteration(s); peak RSS {:.0} MiB",
        target.n_users(),
        universe.pairs.len(),
        universe.n_total,
        100.0 * universe.retained_fraction(),
        trace.final_graph().n_edges(),
        trace.n_iterations(),
        peak_mib()
    );

    SizeReport {
        users: target.n_users(),
        checkins,
        n_shards,
        build_ms,
        stream_ms,
        materialize_ms,
        candidates_ms,
        infer_ms,
        all_pairs: universe.n_total,
        candidates: universe.pairs.len() as u64,
        retained_fraction: universe.retained_fraction(),
        fallback_full: universe.residue_predicted_friend,
        edges_predicted: trace.final_graph().n_edges(),
        iterations: trace.n_iterations(),
        peak_after_world_bytes,
        peak_after_candidates_bytes,
        peak_after_infer_bytes,
    }
}

/// Log-log slope through the two largest measured points, evaluated at `x`.
fn extrapolate(points: &[(f64, f64)], x: f64) -> Option<f64> {
    let [.., (x1, y1), (x2, y2)] = points else { return None };
    if *y1 <= 0.0 || *y2 <= 0.0 || x1 == x2 {
        return None;
    }
    let slope = (y2 / y1).ln() / (x2 / x1).ln();
    Some(y2 * (x / x2).powf(slope))
}

fn main() {
    let _obs = seeker_obs::init_cli_sinks();
    let seed = seeker_bench::seed_from_env();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let measure_1m = seeker_obs::env::flag("SEEKER_BENCH_1M");
    let gate_mib: Option<f64> =
        seeker_obs::env::raw("SEEKER_BENCH_GATE").and_then(|g| g.parse().ok());
    let sizes: Vec<usize> = if smoke { vec![SIZES[0]] } else { SIZES.to_vec() };
    eprintln!(
        "bench_scale: seed {seed}, sizes {sizes:?}{}{}",
        if measure_1m { " + measured 1M" } else { " + extrapolated 1M" },
        if smoke { " (smoke)" } else { "" }
    );

    // Train once on a 1000-user world whose region is widened to the
    // largest target's extent (and whose cities are spread out so the
    // division's bounding box reaches the target terrain). The division is
    // frozen at training time; a region mismatch would silently drop every
    // out-of-box target check-in from the universe.
    // The training geometry is held fixed across smoke and full runs (the
    // full sweep's largest size, or 1M when measured): smoke mode must
    // train the exact model the full run would, so a calibration
    // regression that would break the ≥ 10k pruning gate fails the CI
    // smoke too.
    let largest = if measure_1m { ONE_MILLION } else { SIZES[SIZES.len() - 1] };
    let mut train_cfg = SyntheticConfig::scale(1_000, seed);
    train_cfg.region_extent_km = SyntheticConfig::scale(largest, seed).region_extent_km;
    train_cfg.n_cities = 24;
    let t0 = Instant::now();
    let train = StreamingWorld::build(&train_cfg)
        .expect("train world")
        .materialize()
        .expect("train world")
        .dataset;
    let attack =
        FriendSeeker::new(FriendSeekerConfig::scale()).train(&train).expect("scale training");
    let train_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "  trained on {} users in {train_ms:.0} ms (zero-JOC p={:.4}, threshold {:.4})",
        train.n_users(),
        attack.phase1().zero_joc_proba(),
        attack.phase1().threshold()
    );
    // Model-level form of the ≥ 10k pruning gate, checked up front (and in
    // smoke mode, where no ≥ 10k world runs): candidate pruning is sound
    // iff the zero-JOC probability calibrates below the threshold.
    assert!(
        attack.phase1().zero_joc_proba() < attack.phase1().threshold(),
        "degenerate pruning gate: the scale() preset no longer rejects the residue"
    );

    let mut reports: Vec<SizeReport> = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let cfg = SyntheticConfig::scale(n, seed + 1 + i as u64);
        reports.push(run_size(&attack, &cfg, shard_policy(n)));
    }
    if measure_1m {
        let cfg = SyntheticConfig::scale(ONE_MILLION, seed + 99);
        reports.push(run_size(&attack, &cfg, shard_policy(ONE_MILLION)));
    }

    // 1M projection from the measured curve (total wall and peak RSS).
    let wall: Vec<(f64, f64)> = reports
        .iter()
        .map(|r| {
            let total = r.build_ms + r.stream_ms + r.materialize_ms + r.candidates_ms + r.infer_ms;
            (r.users as f64, total)
        })
        .collect();
    let mem: Vec<(f64, f64)> =
        reports.iter().map(|r| (r.users as f64, r.peak_after_infer_bytes as f64)).collect();
    let projected_wall_ms = extrapolate(&wall, ONE_MILLION as f64);
    let projected_peak_bytes = extrapolate(&mem, ONE_MILLION as f64);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"streaming + sharded pipeline scale harness\",");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"train_users\": {},", train.n_users());
    let _ = writeln!(json, "  \"train_ms\": {train_ms:.1},");
    let _ = writeln!(json, "  \"shard_policy\": \"max(4, users / 500)\",");
    let _ = writeln!(json, "  \"sizes\": [");
    for (i, r) in reports.iter().enumerate() {
        let comma = if i + 1 < reports.len() { "," } else { "" };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"users\": {},", r.users);
        let _ = writeln!(json, "      \"checkins\": {},", r.checkins);
        let _ = writeln!(json, "      \"n_shards\": {},", r.n_shards);
        let _ = writeln!(json, "      \"stages_ms\": {{");
        let _ = writeln!(json, "        \"world_build\": {:.3},", r.build_ms);
        let _ = writeln!(json, "        \"stream_count\": {:.3},", r.stream_ms);
        let _ = writeln!(json, "        \"materialize\": {:.3},", r.materialize_ms);
        let _ = writeln!(json, "        \"candidates\": {:.3},", r.candidates_ms);
        let _ = writeln!(json, "        \"infer\": {:.3}", r.infer_ms);
        let _ = writeln!(json, "      }},");
        let _ = writeln!(json, "      \"peak_rss_bytes\": {{");
        let _ = writeln!(json, "        \"after_world\": {},", r.peak_after_world_bytes);
        let _ = writeln!(json, "        \"after_candidates\": {},", r.peak_after_candidates_bytes);
        let _ = writeln!(json, "        \"after_infer\": {}", r.peak_after_infer_bytes);
        let _ = writeln!(json, "      }},");
        let _ = writeln!(json, "      \"universe\": {{");
        let _ = writeln!(json, "        \"all_pairs\": {},", r.all_pairs);
        let _ = writeln!(json, "        \"candidates\": {},", r.candidates);
        let _ = writeln!(json, "        \"retained_fraction\": {:.8},", r.retained_fraction);
        let _ = writeln!(json, "        \"fallback_full\": {}", r.fallback_full);
        let _ = writeln!(json, "      }},");
        let _ = writeln!(json, "      \"edges_predicted\": {},", r.edges_predicted);
        let _ = writeln!(json, "      \"iterations\": {}", r.iterations);
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"one_million\": {{");
    let _ = writeln!(json, "    \"users\": {ONE_MILLION},");
    let _ = writeln!(json, "    \"measured\": {measure_1m},");
    match (projected_wall_ms, projected_peak_bytes) {
        (Some(w), Some(m)) if !measure_1m => {
            let _ = writeln!(json, "    \"extrapolated_wall_ms\": {w:.1},");
            let _ = writeln!(json, "    \"extrapolated_peak_bytes\": {m:.0},");
        }
        _ => {
            let _ = writeln!(json, "    \"extrapolated_wall_ms\": null,");
            let _ = writeln!(json, "    \"extrapolated_peak_bytes\": null,");
        }
    }
    let _ =
        writeln!(json, "    \"basis\": \"log-log slope through the two largest measured sizes\"");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_scale.json");
    std::fs::write(&path, json).expect("write BENCH_scale.json");
    eprintln!("saved {}", path.display());

    if let Some(limit_mib) = gate_mib {
        let peak = peak_mib();
        if !(peak <= limit_mib) {
            eprintln!("bench_scale: GATE FAILED — peak RSS {peak:.0} MiB > {limit_mib:.0} MiB");
            seeker_obs::flush();
            std::process::exit(1);
        }
        eprintln!("bench_scale: gate ok — peak RSS {peak:.0} MiB <= {limit_mib:.0} MiB");
    }
    seeker_obs::flush();
}
