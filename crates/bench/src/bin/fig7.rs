//! Regenerates Fig. 7 (performance vs sigma).

#![deny(missing_docs, dead_code)]
fn main() {
    let seed = seeker_bench::seed_from_env();
    seeker_bench::report::emit("fig7", &seeker_bench::experiments::sweeps::fig7(seed));
}
