//! Regenerates Fig. 7 (performance vs sigma).
fn main() {
    let seed = seeker_bench::seed_from_env();
    seeker_bench::report::emit("fig7", &seeker_bench::experiments::sweeps::fig7(seed));
}
