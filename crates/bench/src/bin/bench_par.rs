//! Serial-vs-parallel benchmark for the `seeker-par` persistent pool.
//!
//! Times every pipeline stage wired into the pool — batched feature
//! encoding (`FeatureStore::build`), phase-1 graph prediction, batch SVM
//! prediction, the full refinement loop, and a dense blocked GEMM — once
//! with 1 worker and once with the ambient worker count (`SEEKER_THREADS`
//! or the core count), and checks the outputs are identical before
//! reporting. Results go to `results/BENCH_par.json`.
//!
//! Methodology: `WARMUP` untimed repetitions bring the pool, allocator,
//! and caches to steady state, then `REPS` timed repetitions are reduced
//! to their minimum (least-noise location statistic) and median
//! (robustness check — a median far above the minimum flags an unquiet
//! machine). Each stage records the dispatch geometry actually used: item
//! count, declared cost class, and the `seeker_par::plan` worker/chunk
//! decision at the benchmark's worker count.
//!
//! Gate mode: when `SEEKER_BENCH_GATE` is set to a float, the process
//! exits nonzero if any stage's min-time speedup falls below it. CI runs
//! this with `SEEKER_THREADS=4 SEEKER_BENCH_GATE=0.9` as a regression
//! tripwire: even on a saturated single-core runner the persistent pool
//! must stay within 10% of serial.

#![deny(missing_docs, dead_code)]

use std::fmt::Write as _;
use std::time::Instant;

use friendseeker::features::FeatureStore;
use seeker_bench::datasets::{world, Preset};
use seeker_bench::harness::{default_config, eval_pairs};
use seeker_bench::report::results_dir;
use seeker_nn::Matrix;
use seeker_par::{max_threads, plan, with_threads, Cost};

/// Untimed repetitions before measurement begins.
const WARMUP: usize = 2;
/// Timed repetitions per stage; the minimum and median are reported.
const REPS: usize = 5;

/// Runs `f` `WARMUP + REPS` times and returns `(min_ms, median_ms, last)`.
fn time_stats<R>(mut f: impl FnMut() -> R) -> (f64, f64, R) {
    for _ in 0..WARMUP {
        let _ = f();
    }
    let mut times = [0.0f64; REPS];
    let mut out = None;
    for t in &mut times {
        let t0 = Instant::now();
        let r = f();
        *t = t0.elapsed().as_secs_f64() * 1e3;
        out = Some(r);
    }
    times.sort_by(f64::total_cmp);
    (times[0], times[REPS / 2], out.expect("REPS >= 1"))
}

/// One benchmarked stage with its dispatch geometry and timings.
struct Stage {
    name: &'static str,
    /// Items handed to the dominant pool dispatch of this stage.
    items: usize,
    /// Declared cost class of that dispatch.
    cost: Cost,
    serial_min_ms: f64,
    serial_median_ms: f64,
    parallel_min_ms: f64,
    parallel_median_ms: f64,
}

impl Stage {
    fn speedup_min(&self) -> f64 {
        self.serial_min_ms / self.parallel_min_ms.max(1e-9)
    }
}

fn main() {
    let _obs = seeker_obs::init_cli_sinks();
    let seed = seeker_bench::seed_from_env();
    let threads = max_threads();
    let effective_cores =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let gate: Option<f64> = seeker_obs::env::raw("SEEKER_BENCH_GATE").and_then(|g| g.parse().ok());
    eprintln!(
        "bench_par: 1 vs {threads} worker(s) on {effective_cores} core(s), \
         seed {seed}, warmup {WARMUP}, reps {REPS}"
    );

    let w = world(Preset::Gowalla, seed);
    let cfg = default_config();
    let trained =
        friendseeker::FriendSeeker::new(cfg).train(&w.train).expect("experiment training");
    let (ep, _) = eval_pairs(&w.target);

    let mut stages: Vec<Stage> = Vec::new();
    let mut bench = |name: &'static str, items: usize, cost: Cost, f: &dyn Fn() -> u64| {
        let (serial_min_ms, serial_median_ms, a) = time_stats(|| with_threads(1, f));
        let (parallel_min_ms, parallel_median_ms, b) = time_stats(|| with_threads(threads, f));
        assert_eq!(a, b, "{name}: serial and parallel outputs diverge");
        eprintln!(
            "  {name}: serial {serial_min_ms:.1}/{serial_median_ms:.1} ms, \
             parallel {parallel_min_ms:.1}/{parallel_median_ms:.1} ms (min/median)"
        );
        stages.push(Stage {
            name,
            items,
            cost,
            serial_min_ms,
            serial_median_ms,
            parallel_min_ms,
            parallel_median_ms,
        });
    };

    // Stage outputs are reduced to a checksum-ish u64 so the closure stays
    // cheap to compare while still catching any serial/parallel divergence.
    bench("feature_store_build", ep.len(), Cost::Heavy, &|| {
        let store = FeatureStore::build(trained.phase1(), &w.target, &ep);
        ep.iter()
            .flat_map(|&p| store.get(p).expect("pair in store"))
            .map(|f| f.to_bits() as u64)
            .sum()
    });
    bench("phase1_predict_graph", ep.len(), Cost::Heavy, &|| {
        trained.phase1().predict_graph(&w.target, &ep).n_edges() as u64
    });
    bench("svm_batch_predict", ep.len(), Cost::Medium, &|| {
        let store = FeatureStore::build(trained.phase1(), &w.target, &ep);
        let g = trained.phase1().predict_graph(&w.target, &ep);
        let k = trained.config().k_hop;
        let x: Vec<Vec<f32>> = ep
            .iter()
            .map(|&p| friendseeker::features::composite_feature(&g, p, k, &store))
            .collect();
        let scaled = trained.phase2().scaler().transform(&x);
        trained.phase2().svm().predict(&scaled).iter().filter(|&&p| p).count() as u64
    });
    bench("infer_full_refinement", ep.len(), Cost::Heavy, &|| {
        let r = trained.infer_pairs(&w.target, ep.clone());
        r.predictions().iter().filter(|&&p| p).count() as u64 + r.trace.graphs.len() as u64
    });

    // Dense blocked GEMM (square f32 matmul). Band parallelism dispatches
    // over row bands of 64, so `items` is the band count.
    const GEMM_N: usize = 256;
    let gemm_a = Matrix::from_vec(
        GEMM_N,
        GEMM_N,
        (0..GEMM_N * GEMM_N).map(|i| ((i * 2_654_435_761) % 1000) as f32 * 1e-3).collect(),
    );
    let gemm_b = Matrix::from_vec(
        GEMM_N,
        GEMM_N,
        (0..GEMM_N * GEMM_N).map(|i| ((i * 2_246_822_519) % 1000) as f32 * 1e-3 - 0.5).collect(),
    );
    bench("nn_dense_matmul", GEMM_N.div_ceil(64), Cost::Heavy, &|| {
        let c = gemm_a.matmul(&gemm_b);
        c.as_slice().iter().map(|f| f.to_bits() as u64).sum()
    });

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"seeker-par serial vs parallel\",");
    let _ = writeln!(json, "  \"preset\": \"{}\",", Preset::Gowalla.name());
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"effective_cores\": {effective_cores},");
    let _ = writeln!(json, "  \"warmup\": {WARMUP},");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"stages\": [");
    for (i, s) in stages.iter().enumerate() {
        // The worker/chunk decision the pool actually makes for this
        // stage's dominant dispatch at the benchmarked worker count.
        let p = with_threads(threads, || plan(s.items, s.cost));
        let comma = if i + 1 == stages.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"stage\": \"{}\", \"items\": {}, \"cost\": \"{}\", \
             \"workers\": {}, \"chunk\": {}, \
             \"serial_min_ms\": {:.3}, \"serial_median_ms\": {:.3}, \
             \"parallel_min_ms\": {:.3}, \"parallel_median_ms\": {:.3}, \
             \"speedup_min\": {:.3}, \"speedup_median\": {:.3}}}{comma}",
            s.name,
            s.items,
            s.cost.name(),
            p.workers,
            p.chunk,
            s.serial_min_ms,
            s.serial_median_ms,
            s.parallel_min_ms,
            s.parallel_median_ms,
            s.speedup_min(),
            s.serial_median_ms / s.parallel_median_ms.max(1e-9),
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_par.json");
    std::fs::write(&path, json).expect("write BENCH_par.json");
    eprintln!("saved {}", path.display());
    seeker_obs::flush();

    if let Some(gate) = gate {
        let worst = stages
            .iter()
            .min_by(|a, b| a.speedup_min().total_cmp(&b.speedup_min()))
            .expect("at least one stage");
        if worst.speedup_min() < gate {
            eprintln!(
                "bench_par GATE FAILED: stage `{}` speedup {:.3} < {gate} \
                 (parallel dispatch is costing wall-clock)",
                worst.name,
                worst.speedup_min()
            );
            std::process::exit(1);
        }
        eprintln!(
            "bench_par gate passed: worst stage speedup {:.3} >= {gate}",
            worst.speedup_min()
        );
    }
}
