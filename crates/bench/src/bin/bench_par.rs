//! Serial-vs-parallel benchmark for the `seeker-par` pool.
//!
//! Times every pipeline stage wired into the pool — batched feature
//! encoding (`FeatureStore::build`), phase-1 graph prediction, batch SVM
//! prediction, and the full refinement loop — once with 1 worker and once
//! with the ambient worker count (`SEEKER_THREADS` or the core count), and
//! checks the outputs are identical before reporting. Results go to
//! `results/BENCH_par.json`.
//!
//! On a single-core runner serial and parallel are expected to tie (the
//! pool's overhead is a few scope spawns per call); the ≥2× acceptance
//! criterion applies to a 4-core machine.

#![deny(missing_docs, dead_code)]

use std::fmt::Write as _;
use std::time::Instant;

use friendseeker::features::FeatureStore;
use seeker_bench::datasets::{world, Preset};
use seeker_bench::harness::{default_config, eval_pairs};
use seeker_bench::report::results_dir;
use seeker_par::{max_threads, with_threads};

/// Timing repetitions per stage; the minimum is reported (standard
/// steady-state benchmarking practice — the minimum is the least noisy
/// location statistic for wall-clock timings).
const REPS: usize = 3;

fn time_min<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.expect("REPS >= 1"))
}

struct Stage {
    name: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
}

fn main() {
    let _obs = seeker_obs::init_cli_sinks();
    let seed = seeker_bench::seed_from_env();
    let threads = max_threads();
    eprintln!("bench_par: 1 vs {threads} worker(s), seed {seed}");

    let w = world(Preset::Gowalla, seed);
    let cfg = default_config();
    let trained =
        friendseeker::FriendSeeker::new(cfg).train(&w.train).expect("experiment training");
    let (ep, _) = eval_pairs(&w.target);

    let mut stages: Vec<Stage> = Vec::new();
    let mut bench = |name: &'static str, f: &dyn Fn() -> u64| {
        let (serial_ms, a) = time_min(|| with_threads(1, f));
        let (parallel_ms, b) = time_min(|| with_threads(threads, f));
        assert_eq!(a, b, "{name}: serial and parallel outputs diverge");
        eprintln!("  {name}: serial {serial_ms:.1} ms, parallel {parallel_ms:.1} ms");
        stages.push(Stage { name, serial_ms, parallel_ms });
    };

    // Stage outputs are reduced to a checksum-ish u64 so the closure stays
    // cheap to compare while still catching any serial/parallel divergence.
    bench("feature_store_build", &|| {
        let store = FeatureStore::build(trained.phase1(), &w.target, &ep);
        ep.iter()
            .flat_map(|&p| store.get(p).expect("pair in store"))
            .map(|f| f.to_bits() as u64)
            .sum()
    });
    bench("phase1_predict_graph", &|| {
        trained.phase1().predict_graph(&w.target, &ep).n_edges() as u64
    });
    bench("svm_batch_predict", &|| {
        let store = FeatureStore::build(trained.phase1(), &w.target, &ep);
        let g = trained.phase1().predict_graph(&w.target, &ep);
        let k = trained.config().k_hop;
        let x: Vec<Vec<f32>> = ep
            .iter()
            .map(|&p| friendseeker::features::composite_feature(&g, p, k, &store))
            .collect();
        let scaled = trained.phase2().scaler().transform(&x);
        trained.phase2().svm().predict(&scaled).iter().filter(|&&p| p).count() as u64
    });
    bench("infer_full_refinement", &|| {
        let r = trained.infer_pairs(&w.target, ep.clone());
        r.predictions().iter().filter(|&&p| p).count() as u64 + r.trace.graphs.len() as u64
    });

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"seeker-par serial vs parallel\",");
    let _ = writeln!(json, "  \"preset\": \"{}\",", Preset::Gowalla.name());
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"stages\": [");
    for (i, s) in stages.iter().enumerate() {
        let speedup = s.serial_ms / s.parallel_ms.max(1e-9);
        let comma = if i + 1 == stages.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"stage\": \"{}\", \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.3}}}{comma}",
            s.name, s.serial_ms, s.parallel_ms, speedup
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_par.json");
    std::fs::write(&path, json).expect("write BENCH_par.json");
    eprintln!("saved {}", path.display());
    seeker_obs::flush();
}
