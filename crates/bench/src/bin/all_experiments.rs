//! Runs every experiment of DESIGN.md §4 in order, timing each.

#![deny(missing_docs, dead_code)]
use std::time::Instant;

fn main() {
    let _obs = seeker_obs::init_cli_sinks();
    let seed = seeker_bench::seed_from_env();
    use seeker_bench::experiments::*;
    use seeker_bench::report::emit;
    let runs: Vec<(&str, Box<dyn Fn(u64) -> Vec<seeker_bench::report::Table>>)> = vec![
        ("table1", Box::new(tables::table1)),
        ("table2", Box::new(tables::table2)),
        ("fig1", Box::new(fig1::fig1)),
        ("fig5", Box::new(fig5::fig5)),
        ("fig7", Box::new(sweeps::fig7)),
        ("fig8", Box::new(sweeps::fig8)),
        ("fig9", Box::new(sweeps::fig9)),
        ("fig10", Box::new(sweeps::fig10)),
        ("fig11", Box::new(comparison::fig11)),
        ("fig12", Box::new(comparison::fig12)),
        ("fig13", Box::new(comparison::fig13)),
        ("fig14", Box::new(obfuscation::fig14)),
        ("fig15", Box::new(obfuscation::fig15)),
        ("fig16", Box::new(obfuscation::fig16)),
    ];
    for (name, f) in runs {
        let t0 = Instant::now();
        eprintln!("=== {name} ===");
        let tables = f(seed);
        emit(name, &tables);
        eprintln!("=== {name} done in {:.1?} ===", t0.elapsed());
    }
    seeker_obs::flush();
}
