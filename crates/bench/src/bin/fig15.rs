//! Regenerates Fig. 15 (F1 vs in-grid blurring ratio).

#![deny(missing_docs, dead_code)]
fn main() {
    let seed = seeker_bench::seed_from_env();
    seeker_bench::report::emit("fig15", &seeker_bench::experiments::obfuscation::fig15(seed));
}
