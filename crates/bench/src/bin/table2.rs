//! Regenerates Table II (co-location x co-friend contingency).
fn main() {
    let seed = seeker_bench::seed_from_env();
    seeker_bench::report::emit("table2", &seeker_bench::experiments::tables::table2(seed));
}
