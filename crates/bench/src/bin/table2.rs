//! Regenerates Table II (co-location x co-friend contingency).

#![deny(missing_docs, dead_code)]
fn main() {
    let seed = seeker_bench::seed_from_env();
    seeker_bench::report::emit("table2", &seeker_bench::experiments::tables::table2(seed));
}
