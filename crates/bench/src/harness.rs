//! Shared run helpers: train-and-evaluate wrappers for FriendSeeker and the
//! baseline suite, over a common evaluation pair sample.

use friendseeker::{pairs, FriendSeeker, FriendSeekerConfig, InferenceResult};
use seeker_baselines::{
    ColocationBaseline, ColocationConfig, DistanceBaseline, DistanceConfig, FriendshipInference,
    UserGraphConfig, UserGraphEmbedding, Walk2Friends, Walk2FriendsConfig,
};
use seeker_ml::BinaryMetrics;
use seeker_trace::{Dataset, UserPair};

/// Seed used for evaluation-pair sampling throughout the harness, kept fixed
/// so every method sees the identical pair sample.
pub const EVAL_SEED: u64 = 0xe0a1;

/// A balanced evaluation sample on the target: all friend pairs + equally
/// many non-friends.
pub fn eval_pairs(target: &Dataset) -> (Vec<UserPair>, Vec<bool>) {
    let lp = pairs::labeled_pairs(target, 1.0, EVAL_SEED);
    (lp.pairs, lp.labels)
}

/// Outcome of one FriendSeeker run.
pub struct SeekerRun {
    /// Final metrics on the evaluation pairs.
    pub metrics: BinaryMetrics,
    /// Metrics of every refinement iteration (`G⁰` first).
    pub per_iteration: Vec<BinaryMetrics>,
    /// The raw inference result (graphs, predictions).
    pub result: InferenceResult,
}

/// Trains FriendSeeker on `train` and evaluates on `target` over the shared
/// evaluation sample.
///
/// # Panics
///
/// Panics if training fails (experiment configurations are pre-validated).
pub fn run_friendseeker(cfg: &FriendSeekerConfig, train: &Dataset, target: &Dataset) -> SeekerRun {
    let trained = FriendSeeker::new(cfg.clone()).train(train).expect("experiment training"); // lint:allow(no-panic) -- experiment harness: abort on misconfiguration
    let (ep, _) = eval_pairs(target);
    let result = trained.infer_pairs(target, ep);
    let metrics = result.evaluate(target);
    let per_iteration = result.evaluate_iterations(target);
    SeekerRun { metrics, per_iteration, result }
}

/// The default experiment configuration (paper parameters, spatial scale
/// adapted; see DESIGN.md).
pub fn default_config() -> FriendSeekerConfig {
    FriendSeekerConfig { sigma: 150, epochs: 15, ..FriendSeekerConfig::default() }
}

/// The four baselines of §IV-A, trained/calibrated on `train`.
pub fn baseline_suite(train: &Dataset) -> Vec<Box<dyn FriendshipInference>> {
    vec![
        Box::new(ColocationBaseline::fit(&ColocationConfig::default(), train)),
        Box::new(DistanceBaseline::fit(&DistanceConfig::default(), train)),
        Box::new(Walk2Friends::fit(&Walk2FriendsConfig::default(), train)),
        Box::new(UserGraphEmbedding::fit(&UserGraphConfig::default(), train)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{world, Preset};

    #[test]
    fn eval_pairs_are_balanced() {
        let w = world(Preset::Gowalla, 3);
        let (pairs, labels) = eval_pairs(&w.target);
        let pos = labels.iter().filter(|&&y| y).count();
        assert_eq!(pos, w.target.n_links());
        assert!(pairs.len() >= 2 * pos - 1);
    }

    #[test]
    fn baseline_suite_has_four_named_methods() {
        let w = world(Preset::Gowalla, 4);
        let suite = baseline_suite(&w.train);
        let names: Vec<_> = suite.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["co-location", "distance", "walk2friends", "user-graph embedding"]);
    }
}
