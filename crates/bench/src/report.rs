//! Result tables: pretty-printed to stdout and saved as markdown under
//! `results/` so EXPERIMENTS.md can reference them.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A rectangular result table with a title.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (e.g. `"Fig. 7 (synth-gowalla): F1 vs sigma"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells, each row the same length as `headers`.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch in {:?}", self.title);
        self.rows.push(cells);
    }

    /// Renders the table as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ =
            writeln!(out, "|{}|", self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Prints the markdown rendering to stdout.
    ///
    /// The tables *are* the program output of the experiment binaries, so
    /// this writes to stdout directly rather than going through a
    /// `seeker-obs` sink.
    pub fn print(&self) {
        // lint:allow(no-print) -- tables are the experiment binaries' stdout
        println!("{}", self.to_markdown());
    }
}

/// The directory experiment results are written into (`results/` under the
/// workspace root, falling back to the current directory).
pub fn results_dir() -> PathBuf {
    // Not a SEEKER_ knob: a cargo-provided build-time path, so it stays a
    // direct read instead of a registry row. lint:allow(env-read)
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    root.join("results")
}

/// Prints the tables and writes them to `results/<name>.md`.
/// I/O failures are reported to stderr but never abort an experiment.
pub fn emit(name: &str, tables: &[Table]) {
    let mut combined = String::new();
    for t in tables {
        t.print();
        combined.push_str(&t.to_markdown());
        combined.push('\n');
    }
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        // lint:allow(no-print) -- I/O failure warning must reach stderr
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.md"));
    if let Err(e) = fs::write(&path, combined) {
        // lint:allow(no-print) -- I/O failure warning must reach stderr
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        seeker_obs::info!("saved {}", path.display());
    }
}

/// Formats a float with 3 decimals (the precision used throughout the
/// experiment tables).
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering_shape() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("|---|---|"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn fmt3_rounds() {
        assert_eq!(fmt3(0.12349), "0.123");
        assert_eq!(fmt3(1.0), "1.000");
    }
}
