//! # seeker-bench
//!
//! The experiment harness of the FriendSeeker reproduction: synthetic
//! experiment worlds, shared run helpers, result tables, and one experiment
//! module per table/figure of the paper (see DESIGN.md §4 for the index).
//!
//! Run everything with `cargo run -p seeker-bench --release --bin all_experiments`,
//! or a single artefact with e.g. `--bin fig11`. Results are printed and
//! saved under `results/`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Shared synthetic worlds the experiment binaries run on.
pub mod datasets;
/// One module per figure/table of the paper's evaluation.
pub mod experiments;
/// Experiment orchestration: sweeps, repetitions, timing.
pub mod harness;
/// CSV/Markdown emitters for `results/`.
pub mod report;

/// The default seed used by the experiment binaries.
pub const DEFAULT_SEED: u64 = 20230701;

/// Reads the experiment seed from the `SEEKER_SEED` env var (through the
/// cached `seeker_obs::env` registry), falling back to [`DEFAULT_SEED`].
pub fn seed_from_env() -> u64 {
    seeker_obs::env::raw("SEEKER_SEED").and_then(|s| s.parse().ok()).unwrap_or(DEFAULT_SEED)
}
