//! One module per paper artefact (table / figure) plus the ablation suite.
//! Every function returns printable [`crate::report::Table`]s; the binaries
//! in `src/bin/` are thin wrappers around these.

pub mod ablations;
pub mod comparison;
pub mod defense;
pub mod extra;
pub mod fig1;
pub mod fig5;
pub mod obfuscation;
pub mod sweeps;
pub mod tables;
