//! Fig. 5: CDFs of the number of length-k paths between friends and
//! non-friends on the ground-truth social graph — the evidence behind
//! choosing k = 3 for the k-hop reachable subgraph.

use friendseeker::phase2::path_count_profile;
use seeker_graph::SocialGraph;
use seeker_trace::stats::sample_non_friend_pairs;

use crate::datasets::{world, Preset};
use crate::report::{fmt3, Table};

/// Fig. 5 as a summary table: per path length, the fraction of pairs with at
/// least one path and the mean path count, for friends vs non-friends.
pub fn fig5(seed: u64) -> Vec<Table> {
    let mut tables = Vec::new();
    for preset in Preset::both() {
        let w = world(preset, seed);
        let g = SocialGraph::from_dataset(&w.full);
        // Exact simple-path enumeration is exponential in k; a fixed
        // 400-pair sample per class keeps k = 5 tractable while leaving the
        // CDF shapes intact.
        let mut friends: Vec<_> = w.full.friendships().collect();
        friends.truncate(400);
        let non_friends = sample_non_friend_pairs(&w.full, friends.len(), seed ^ 0xf165);

        // For friend pairs, the direct edge must not leak into the path
        // statistics; remove it while profiling (as link prediction does).
        let mut t = Table::new(
            format!(
                "Fig. 5 ({}): length-k path counts between friends vs non-friends",
                preset.name()
            ),
            &[
                "k",
                "friends: P(>=1 path)",
                "friends: mean #paths",
                "non-friends: P(>=1 path)",
                "non-friends: mean #paths",
                "separation (mean ratio)",
            ],
        );
        let k_max = 5usize;
        let mut fr_counts = vec![Vec::new(); k_max - 1];
        let mut nf_counts = vec![Vec::new(); k_max - 1];
        let mut g_mut = g.clone();
        for &pair in &friends {
            g_mut.remove_edge(pair);
            let profile = path_count_profile(&g_mut, pair, k_max);
            g_mut.add_edge(pair);
            for (i, &c) in profile.iter().enumerate() {
                fr_counts[i].push(c);
            }
        }
        for &pair in &non_friends {
            let profile = path_count_profile(&g, pair, k_max);
            for (i, &c) in profile.iter().enumerate() {
                nf_counts[i].push(c);
            }
        }
        for (i, k) in (2..=k_max).enumerate() {
            let stats = |v: &[usize]| -> (f64, f64) {
                let n = v.len().max(1) as f64;
                let nonzero = v.iter().filter(|&&c| c > 0).count() as f64 / n;
                let mean = v.iter().sum::<usize>() as f64 / n;
                (nonzero, mean)
            };
            let (fnz, fmean) = stats(&fr_counts[i]);
            let (nnz, nmean) = stats(&nf_counts[i]);
            let ratio = if nmean > 0.0 { fmean / nmean } else { f64::INFINITY };
            t.push_row(vec![
                k.to_string(),
                fmt3(fnz),
                fmt3(fmean),
                fmt3(nnz),
                fmt3(nmean),
                if ratio.is_finite() { fmt3(ratio) } else { "inf".to_string() },
            ]);
        }
        tables.push(t);
    }
    tables
}
