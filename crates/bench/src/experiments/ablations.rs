//! Ablation studies on the design choices DESIGN.md calls out:
//!
//! - supervised vs plain autoencoder (α = 1 vs α = 0);
//! - the k of the k-hop reachable subgraph;
//! - classifier `C`: jointly-trained MLP head vs KNN on the embedding;
//! - optimizer: the paper's plain SGD vs Adam at the same rate;
//! - composite feature vs presence-only vs social-only for `C'`;
//! - Theorem-1 pruned path extraction vs naive all-paths extraction.

use friendseeker::features::{social_proximity_feature, FeatureStore};
use friendseeker::phase1::train_phase1;
use friendseeker::phase2::train_phase2;
use friendseeker::{ClassifierKind, FriendSeekerConfig};
use seeker_graph::{all_paths_of_length, KHopSubgraph, SocialGraph};
use seeker_ml::{BinaryMetrics, StandardScaler, Svm};
use seeker_nn::Optimizer;
use seeker_trace::UserPair;

use crate::datasets::{world, Preset};
use crate::harness::{default_config, eval_pairs, run_friendseeker};
use crate::report::{fmt3, Table};

/// Ablation 1: α = 0 (plain autoencoder) vs α = 1 (supervised, the paper's
/// default).
pub fn alpha_ablation(seed: u64) -> Vec<Table> {
    config_ablation(
        seed,
        "Ablation: supervised vs plain autoencoder",
        &["alpha=0 (plain)", "alpha=1 (supervised)"],
        |cfg, i| {
            cfg.alpha = if i == 0 { 0.0 } else { 1.0 };
        },
    )
}

/// Ablation 2: the k of the k-hop reachable subgraph (paper argues k = 3).
pub fn k_hop_ablation(seed: u64) -> Vec<Table> {
    config_ablation(
        seed,
        "Ablation: k of the k-hop reachable subgraph",
        &["k=2", "k=3", "k=4", "k=5"],
        |cfg, i| {
            cfg.k_hop = i + 2;
        },
    )
}

/// Ablation 3: classifier `C` — jointly-trained MLP head vs KNN.
pub fn classifier_ablation(seed: u64) -> Vec<Table> {
    config_ablation(
        seed,
        "Ablation: phase-1 classifier C",
        &["MLP head (Algorithm 1)", "KNN (k=10)", "random forest (32 trees)"],
        |cfg, i| {
            cfg.classifier = match i {
                0 => ClassifierKind::MlpHead,
                1 => ClassifierKind::Knn { k: 10 },
                _ => ClassifierKind::RandomForest { n_trees: 32 },
            };
        },
    )
}

/// Ablation 4: optimizer — the paper's plain SGD at β = 0.005 vs Adam at the
/// same rate and epoch budget.
pub fn optimizer_ablation(seed: u64) -> Vec<Table> {
    config_ablation(
        seed,
        "Ablation: optimizer (equal epochs)",
        &["SGD (paper)", "Adam"],
        |cfg, i| {
            cfg.optimizer = if i == 0 {
                Optimizer::Sgd { lr: 0.005 }
            } else {
                Optimizer::Adam { lr: 0.005, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
            };
            cfg.epochs = 30;
        },
    )
}

/// Ablation: adaptive quadtree STD vs uniform grids of comparable cell
/// counts (4³ = 64 and 4⁴ = 256 cells bracket the adaptive grid count at
/// the default σ).
pub fn grid_ablation(seed: u64) -> Vec<Table> {
    config_ablation(
        seed,
        "Ablation: adaptive quadtree vs uniform grid",
        &["adaptive quadtree (sigma=150)", "uniform 4^3 cells", "uniform 4^4 cells"],
        |cfg, i| {
            cfg.uniform_grid_depth = match i {
                0 => None,
                1 => Some(3),
                _ => Some(4),
            };
        },
    )
}

fn config_ablation(
    seed: u64,
    title: &str,
    labels: &[&str],
    apply: impl Fn(&mut FriendSeekerConfig, usize),
) -> Vec<Table> {
    let mut tables = Vec::new();
    for preset in Preset::both() {
        let w = world(preset, seed);
        let mut t = Table::new(
            format!("{title} ({})", preset.name()),
            &["variant", "F1", "Precision", "Recall"],
        );
        for (i, label) in labels.iter().enumerate() {
            let mut cfg = default_config();
            apply(&mut cfg, i);
            let run = run_friendseeker(&cfg, &w.train, &w.target);
            t.push_row(vec![
                label.to_string(),
                fmt3(run.metrics.f1()),
                fmt3(run.metrics.precision()),
                fmt3(run.metrics.recall()),
            ]);
            seeker_obs::info!("  [ablation/{}] {label}: F1={:.3}", preset.name(), run.metrics.f1());
        }
        tables.push(t);
    }
    tables
}

/// Which feature blocks classifier `C'` sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FeatureSet {
    PresenceOnly,
    SocialOnly,
    Composite,
}

/// How the k-hop paths are extracted for the social feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PathMode {
    /// Theorem 1: shortest-first, consumed intermediates.
    Pruned,
    /// All simple paths of each length, no consumption.
    Naive,
}

/// Ablation 5+6: the feature composition of `C'` and the path-extraction
/// strategy, evaluated with a single refinement step (isolates the feature
/// effect from iteration dynamics).
pub fn feature_ablation(seed: u64) -> Vec<Table> {
    let mut tables = Vec::new();
    for preset in Preset::both() {
        let w = world(preset, seed);
        let cfg = default_config();
        let p1 = train_phase1(&cfg, &w.train).expect("experiment training"); // lint:allow(no-panic) -- experiment harness: abort on misconfiguration
        let variants: [(&str, FeatureSet, PathMode); 4] = [
            ("presence only (h)", FeatureSet::PresenceOnly, PathMode::Pruned),
            ("social only (s)", FeatureSet::SocialOnly, PathMode::Pruned),
            ("composite (h ⊕ s), pruned paths", FeatureSet::Composite, PathMode::Pruned),
            ("composite (h ⊕ s), naive all-paths", FeatureSet::Composite, PathMode::Naive),
        ];
        let mut t = Table::new(
            format!("Ablation: C' features and path extraction ({})", preset.name()),
            &["variant", "F1", "Precision", "Recall"],
        );
        // Train-side assembly.
        let train_store = FeatureStore::build(&p1.model, &w.train, &p1.train_pairs.pairs);
        let g0_train = p1.model.predict_graph(&w.train, &p1.train_pairs.pairs);
        let (ep, el) = eval_pairs(&w.target);
        let target_store = FeatureStore::build(&p1.model, &w.target, &ep);
        let g0_target = p1.model.predict_graph(&w.target, &ep);
        let cal_idx: Vec<usize> = if p1.holdout.len() >= 20 {
            p1.holdout.clone()
        } else {
            (0..p1.train_pairs.len()).collect()
        };
        let cal_labels: Vec<bool> = cal_idx.iter().map(|&i| p1.train_pairs.labels[i]).collect();
        // Benchmark the SVM configuration the real pipeline selects (the
        // training grid search over {1,4,16,64}/dim γ), not the old fixed
        // 1/dim heuristic the pipeline may never use.
        let (p2, _) = train_phase2(&cfg, &p1.model, &w.train, &p1.train_pairs, &p1.holdout)
            .expect("experiment training"); // lint:allow(no-panic) -- experiment harness: abort on misconfiguration
        let svm_cfg = p2.svm_config().clone();
        for (label, set, mode) in variants {
            let train_x = assemble(&g0_train, &p1.train_pairs.pairs, &cfg, &train_store, set, mode);
            let cal_x: Vec<Vec<f32>> = cal_idx.iter().map(|&i| train_x[i].clone()).collect();
            let (scaler, scaled) = StandardScaler::fit_transform(&cal_x);
            let svm = Svm::fit(&svm_cfg, &scaled, &cal_labels);
            let target_x = assemble(&g0_target, &ep, &cfg, &target_store, set, mode);
            let preds = svm.predict(&scaler.transform(&target_x));
            let m = BinaryMetrics::from_predictions(&preds, &el);
            t.push_row(vec![
                label.to_string(),
                fmt3(m.f1()),
                fmt3(m.precision()),
                fmt3(m.recall()),
            ]);
            seeker_obs::info!("  [features/{}] {label}: F1={:.3}", preset.name(), m.f1());
        }
        tables.push(t);
    }
    tables
}

fn assemble(
    graph: &SocialGraph,
    pairs: &[UserPair],
    cfg: &FriendSeekerConfig,
    store: &FeatureStore,
    set: FeatureSet,
    mode: PathMode,
) -> Vec<Vec<f32>> {
    pairs
        .iter()
        .map(|&pair| {
            let h = store.get(pair).expect("pair in store").to_vec(); // lint:allow(no-panic) -- experiment harness: abort on misconfiguration
            let s = match mode {
                PathMode::Pruned => {
                    let sub = KHopSubgraph::extract(graph, pair, cfg.k_hop);
                    social_proximity_feature(&sub, cfg.k_hop, store)
                }
                PathMode::Naive => naive_social_feature(graph, pair, cfg.k_hop, store),
            };
            match set {
                FeatureSet::PresenceOnly => h,
                FeatureSet::SocialOnly => s,
                FeatureSet::Composite => {
                    let mut v = h;
                    v.extend(s);
                    v
                }
            }
        })
        .collect()
}

/// The naive social feature: sum edge features over **all** simple paths of
/// each length (no shortest-first pruning) — the strawman Theorem 1 argues
/// against.
fn naive_social_feature(
    graph: &SocialGraph,
    pair: UserPair,
    k: usize,
    store: &FeatureStore,
) -> Vec<f32> {
    let d = store.dim();
    let mut out = vec![0.0f32; (k - 1) * d];
    for l in 2..=k {
        let block = &mut out[(l - 2) * d..(l - 1) * d];
        for path in all_paths_of_length(graph, pair.lo(), pair.hi(), l) {
            for w in path.windows(2) {
                if let Some(f) = store.get(UserPair::new(w[0], w[1])) {
                    for (o, &x) in block.iter_mut().zip(f.iter()) {
                        *o += x;
                    }
                }
            }
        }
    }
    out
}

/// Ablation 7: cyber-friend detection across k (does the social feature,
/// not the presence feature, carry the cyber signal?).
pub fn cyber_detection_table(seed: u64) -> Vec<Table> {
    let mut tables = Vec::new();
    for preset in Preset::both() {
        let w = world(preset, seed);
        let cfg = default_config();
        let run = run_friendseeker(&cfg, &w.train, &w.target);
        let preds = run.result.predictions();
        let (ep, _) = eval_pairs(&w.target);
        let cyber_idx: Vec<usize> =
            (0..ep.len()).filter(|&i| w.target_cyber.contains(&ep[i])).collect();
        let mut t = Table::new(
            format!("Cyber-friend detection ({})", preset.name()),
            &["quantity", "value"],
        );
        t.push_row(vec!["cyber friend pairs in eval set".into(), cyber_idx.len().to_string()]);
        if !cyber_idx.is_empty() {
            let hit = cyber_idx.iter().filter(|&&i| preds[i]).count();
            t.push_row(vec![
                "FriendSeeker recall on cyber friends".into(),
                fmt3(hit as f64 / cyber_idx.len() as f64),
            ]);
            // Phase-1-only recall for contrast (presence features cannot see
            // cyber friends; phase 2 adds them through graph structure).
            let g0 = &run.result.trace.graphs[0];
            let hit0 = cyber_idx.iter().filter(|&&i| g0.has_edge(ep[i])).count();
            t.push_row(vec![
                "phase-1-only recall on cyber friends".into(),
                fmt3(hit0 as f64 / cyber_idx.len() as f64),
            ]);
        }
        tables.push(t);
    }
    tables
}
