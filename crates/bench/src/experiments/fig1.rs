//! Fig. 1: CDFs of the number of co-locations / common friends shared by
//! friend pairs vs non-friend pairs.

use seeker_trace::stats;

use crate::datasets::{world, Preset};
use crate::report::{fmt3, Table};

/// Evaluation points on the count axis.
const XS: [u64; 7] = [0, 1, 2, 3, 5, 10, 20];

/// Fig. 1(a)+(b) as CDF tables, one per dataset.
pub fn fig1(seed: u64) -> Vec<Table> {
    let mut tables = Vec::new();
    for preset in Preset::both() {
        let w = world(preset, seed);
        let cdfs = stats::pair_cdfs(&w.full, 1.0, seed ^ 0xf161);
        let mut t = Table::new(
            format!("Fig. 1 ({}): CDFs of shared co-locations and common friends", preset.name()),
            &[
                "x",
                "P(#colo <= x | friends)",
                "P(#colo <= x | non-friends)",
                "P(#cofriend <= x | friends)",
                "P(#cofriend <= x | non-friends)",
            ],
        );
        for &x in &XS {
            t.push_row(vec![
                x.to_string(),
                fmt3(cdfs.colocations_friends.eval(x)),
                fmt3(cdfs.colocations_non_friends.eval(x)),
                fmt3(cdfs.common_friends_friends.eval(x)),
                fmt3(cdfs.common_friends_non_friends.eval(x)),
            ]);
        }
        tables.push(t);
    }
    tables
}
