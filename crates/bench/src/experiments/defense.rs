//! Extension experiment (the paper's future work): does a *targeted*
//! hiding defense protect friendship privacy better than random hiding at
//! the same budget?

use seeker_ml::BinaryMetrics;
use seeker_obfuscation::hide_checkins;
use seeker_obfuscation::targeted::{targeted_hide, TargetedHidingConfig};

use crate::datasets::{world, Preset};
use crate::harness::{baseline_suite, default_config, eval_pairs, run_friendseeker};
use crate::report::{fmt3, Table};

/// Budgets evaluated (fractions of check-ins removed).
pub const BUDGETS: [f64; 3] = [0.2, 0.3, 0.5];

/// Random vs targeted hiding at equal budgets, against FriendSeeker and the
/// strongest baseline family.
pub fn defense_comparison(seed: u64) -> Vec<Table> {
    let cfg = default_config();
    let mut tables = Vec::new();
    for preset in Preset::both() {
        let w = world(preset, seed);
        let mut t = Table::new(
            format!("Targeted vs random hiding ({}): attack F1 after defense", preset.name()),
            &["budget", "defense", "FriendSeeker", "co-location", "user-graph embedding"],
        );
        for &budget in &BUDGETS {
            for targeted in [false, true] {
                let (train, target, label) = if targeted {
                    let d = TargetedHidingConfig { budget, ..Default::default() };
                    (
                        targeted_hide(&w.train, &d).expect("valid budget"), // lint:allow(no-panic) -- experiment harness: abort on misconfiguration
                        targeted_hide(&w.target, &d).expect("valid budget"), // lint:allow(no-panic) -- experiment harness: abort on misconfiguration
                        "targeted",
                    )
                } else {
                    (
                        hide_checkins(&w.train, budget, seed ^ 0xd1).expect("valid budget"), // lint:allow(no-panic) -- experiment harness: abort on misconfiguration
                        hide_checkins(&w.target, budget, seed ^ 0xd2).expect("valid budget"), // lint:allow(no-panic) -- experiment harness: abort on misconfiguration
                        "random",
                    )
                };
                let (pairs, labels) = eval_pairs(&target);
                let run = run_friendseeker(&cfg, &train, &target);
                let mut row = vec![
                    format!("{:.0}%", budget * 100.0),
                    label.to_string(),
                    fmt3(run.metrics.f1()),
                ];
                for method in baseline_suite(&train) {
                    if method.name() == "co-location" || method.name() == "user-graph embedding" {
                        let preds = method.predict(&target, &pairs);
                        row.push(fmt3(BinaryMetrics::from_predictions(&preds, &labels).f1()));
                    }
                }
                seeker_obs::info!(
                    "  [defense/{}] {label} {:.0}%: FriendSeeker F1={:.3}",
                    preset.name(),
                    budget * 100.0,
                    run.metrics.f1()
                );
                t.push_row(row);
            }
        }
        tables.push(t);
    }
    tables
}
