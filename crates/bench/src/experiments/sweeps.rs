//! Parameter-sensitivity sweeps: Fig. 7 (σ), Fig. 8 (τ) and Fig. 9 (d).

use crate::datasets::{world, Preset};
use crate::harness::{default_config, run_friendseeker};
use crate::report::{fmt3, Table};

/// σ values — the scaled analogue of the paper's 500..1500 sweep (the paper
/// uses ~0.5–1.5 % of its POI count per grid; so do we).
pub const SIGMAS: [usize; 5] = [60, 100, 150, 225, 300];

/// τ values in days (paper: 1 to 60 days, peak expected at 7).
pub const TAUS: [f64; 7] = [1.0, 7.0, 14.0, 21.0, 28.0, 42.0, 56.0];

/// d values (paper: 16 to 256, doubling).
pub const DIMS: [usize; 5] = [16, 32, 64, 128, 256];

/// Fig. 7: attack performance vs the maximum number of POIs in a grid.
pub fn fig7(seed: u64) -> Vec<Table> {
    sweep(seed, "Fig. 7", "sigma", &SIGMAS.map(|s| s.to_string()), |cfg, i| {
        cfg.sigma = SIGMAS[i];
    })
}

/// Fig. 8: attack performance vs the time-slot length τ.
pub fn fig8(seed: u64) -> Vec<Table> {
    sweep(seed, "Fig. 8", "tau (days)", &TAUS.map(|t| format!("{t}")), |cfg, i| {
        cfg.tau_days = TAUS[i];
        if TAUS[i] < 7.0 {
            // Small τ explodes the STD width; cap the first hidden layer
            // harder to keep the single-core run tractable (DESIGN.md §3).
            cfg.max_hidden = 256;
        }
    })
}

/// Fig. 9: attack performance vs the presence-feature dimension d.
pub fn fig9(seed: u64) -> Vec<Table> {
    sweep(seed, "Fig. 9", "d", &DIMS.map(|d| d.to_string()), |cfg, i| {
        cfg.feature_dim = DIMS[i];
    })
}

fn sweep(
    seed: u64,
    figure: &str,
    param: &str,
    labels: &[String],
    apply: impl Fn(&mut friendseeker::FriendSeekerConfig, usize),
) -> Vec<Table> {
    let mut tables = Vec::new();
    for preset in Preset::both() {
        let w = world(preset, seed);
        let mut t = Table::new(
            format!("{figure} ({}): attack performance vs {param}", preset.name()),
            &[param, "F1", "Precision", "Recall", "iterations"],
        );
        for (i, label) in labels.iter().enumerate() {
            let mut cfg = default_config();
            apply(&mut cfg, i);
            let run = run_friendseeker(&cfg, &w.train, &w.target);
            t.push_row(vec![
                label.clone(),
                fmt3(run.metrics.f1()),
                fmt3(run.metrics.precision()),
                fmt3(run.metrics.recall()),
                run.result.trace.n_iterations().to_string(),
            ]);
            seeker_obs::info!(
                "  [{figure}/{}] {param}={label}: F1={:.3}",
                preset.name(),
                run.metrics.f1()
            );
        }
        tables.push(t);
    }
    tables
}

/// Fig. 10: attack performance as a function of refinement iterations.
pub fn fig10(seed: u64) -> Vec<Table> {
    let mut tables = Vec::new();
    for preset in Preset::both() {
        let w = world(preset, seed);
        let cfg = default_config();
        let run = run_friendseeker(&cfg, &w.train, &w.target);
        let mut t = Table::new(
            format!("Fig. 10 ({}): attack performance vs iterations", preset.name()),
            &["iteration", "F1", "Precision", "Recall", "edge change ratio"],
        );
        for (i, m) in run.per_iteration.iter().enumerate() {
            let change =
                if i == 0 { "-".to_string() } else { fmt3(run.result.trace.change_ratios[i - 1]) };
            t.push_row(vec![
                if i == 0 { "G0 (phase 1)".to_string() } else { i.to_string() },
                fmt3(m.f1()),
                fmt3(m.precision()),
                fmt3(m.recall()),
                change,
            ]);
        }
        tables.push(t);
    }
    tables
}
