//! Fig. 14–16: countermeasure effects. Both the attacker's training data
//! and the target data are perturbed (the defense acts on everything the
//! MSN publishes), all attacks are re-trained on the perturbed data, and F1
//! is measured as the perturbation ratio grows.

use seeker_ml::BinaryMetrics;
use seeker_obfuscation::{blur_checkins, hide_checkins, BlurMode};
use seeker_trace::Dataset;

use crate::datasets::{world, Preset};
use crate::harness::{baseline_suite, default_config, eval_pairs, run_friendseeker};
use crate::report::{fmt3, Table};

/// Perturbation ratios (paper: 10 % to 50 %).
pub const RATIOS: [f64; 5] = [0.1, 0.2, 0.3, 0.4, 0.5];

/// The three obfuscation mechanisms of §IV-D.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Fig. 14 — random removal of check-ins.
    Hiding,
    /// Fig. 15 — blur within the spatial grid.
    InGridBlur,
    /// Fig. 16 — blur into a neighbouring grid.
    CrossGridBlur,
}

impl Mechanism {
    fn figure(self) -> &'static str {
        match self {
            Mechanism::Hiding => "Fig. 14",
            Mechanism::InGridBlur => "Fig. 15",
            Mechanism::CrossGridBlur => "Fig. 16",
        }
    }

    fn label(self) -> &'static str {
        match self {
            Mechanism::Hiding => "hiding",
            Mechanism::InGridBlur => "in-grid blurring",
            Mechanism::CrossGridBlur => "cross-grid blurring",
        }
    }

    fn apply(self, ds: &Dataset, ratio: f64, sigma: usize, seed: u64) -> Dataset {
        match self {
            Mechanism::Hiding => hide_checkins(ds, ratio, seed).expect("valid ratio"), // lint:allow(no-panic) -- experiment harness: abort on misconfiguration
            Mechanism::InGridBlur => {
                // lint:allow(no-panic) -- experiment harness: abort on misconfiguration
                blur_checkins(ds, ratio, BlurMode::InGrid, sigma, seed).expect("valid ratio")
            }
            Mechanism::CrossGridBlur => {
                // lint:allow(no-panic) -- experiment harness: abort on misconfiguration
                blur_checkins(ds, ratio, BlurMode::CrossGrid, sigma, seed).expect("valid ratio")
            }
        }
    }
}

/// Runs one mechanism's sweep over both datasets (one table each).
pub fn obfuscation_sweep(mechanism: Mechanism, seed: u64) -> Vec<Table> {
    let cfg = default_config();
    let mut tables = Vec::new();
    for preset in Preset::both() {
        let w = world(preset, seed);
        let mut t = Table::new(
            format!(
                "{} ({}): F1 vs proportion of {} check-ins",
                mechanism.figure(),
                preset.name(),
                mechanism.label()
            ),
            &[
                "ratio",
                "FriendSeeker",
                "co-location",
                "distance",
                "walk2friends",
                "user-graph embedding",
            ],
        );
        for &ratio in &RATIOS {
            let train = mechanism.apply(&w.train, ratio, cfg.sigma, seed ^ 0x0b5_0001);
            let target = mechanism.apply(&w.target, ratio, cfg.sigma, seed ^ 0x0b5_0002);
            let (pairs, labels) = eval_pairs(&target);
            let run = run_friendseeker(&cfg, &train, &target);
            let mut row = vec![format!("{:.0}%", ratio * 100.0), fmt3(run.metrics.f1())];
            for method in baseline_suite(&train) {
                let preds = method.predict(&target, &pairs);
                row.push(fmt3(BinaryMetrics::from_predictions(&preds, &labels).f1()));
            }
            seeker_obs::info!(
                "  [{}/{}] ratio={:.0}%: FriendSeeker F1={:.3}",
                mechanism.figure(),
                preset.name(),
                ratio * 100.0,
                run.metrics.f1()
            );
            t.push_row(row);
        }
        tables.push(t);
    }
    tables
}

/// Fig. 14.
pub fn fig14(seed: u64) -> Vec<Table> {
    obfuscation_sweep(Mechanism::Hiding, seed)
}

/// Fig. 15.
pub fn fig15(seed: u64) -> Vec<Table> {
    obfuscation_sweep(Mechanism::InGridBlur, seed)
}

/// Fig. 16.
pub fn fig16(seed: u64) -> Vec<Table> {
    obfuscation_sweep(Mechanism::CrossGridBlur, seed)
}
