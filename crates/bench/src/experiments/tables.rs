//! Table I (dataset statistics) and Table II (co-location × co-friend
//! contingency) of the paper's empirical study.

use seeker_trace::stats;

use crate::datasets::{world, Preset};
use crate::report::Table;

/// Table I: basic statistics of both datasets.
pub fn table1(seed: u64) -> Vec<Table> {
    let mut t = Table::new(
        "Table I: statistics of the two synthetic MSN trace datasets",
        &["Dataset", "# POIs", "# Users", "# Check-ins", "# Links"],
    );
    for preset in Preset::both() {
        let w = world(preset, seed);
        let s = stats::basic_stats(&w.full);
        t.push_row(vec![
            preset.name().to_string(),
            s.n_pois.to_string(),
            s.n_users.to_string(),
            s.n_checkins.to_string(),
            s.n_links.to_string(),
        ]);
    }
    vec![t]
}

/// Table II: per-class distribution over the four
/// (co-location × co-friend) cells.
pub fn table2(seed: u64) -> Vec<Table> {
    let mut tables = Vec::new();
    for preset in Preset::both() {
        let w = world(preset, seed);
        let c = stats::contingency(&w.full, 1.0, seed ^ 0x7ab1e2);
        let mut t = Table::new(
            format!(
                "Table II ({}): proportion of pairs by co-location (C-L) and co-friend (C-F)",
                preset.name()
            ),
            &["C-L", "C-F", "Friends", "Non-friends"],
        );
        let pct = |v: f64| format!("{:.2}%", v * 100.0);
        t.push_row(vec![
            "Yes".into(),
            "Yes".into(),
            pct(c.friends.colo_and_cofriend),
            pct(c.non_friends.colo_and_cofriend),
        ]);
        t.push_row(vec![
            "Yes".into(),
            "No".into(),
            pct(c.friends.colo_only),
            pct(c.non_friends.colo_only),
        ]);
        t.push_row(vec![
            "No".into(),
            "Yes".into(),
            pct(c.friends.cofriend_only),
            pct(c.non_friends.cofriend_only),
        ]);
        t.push_row(vec![
            "No".into(),
            "No".into(),
            pct(c.friends.neither),
            pct(c.non_friends.neither),
        ]);
        tables.push(t);
    }
    tables
}
