//! Extension comparison: the PGT method (the paper's reference \[5\], not one
//! of its four evaluated baselines) against FriendSeeker and the strongest
//! paper baseline, on the standard evaluation sample.

use seeker_baselines::{FriendshipInference, PgtBaseline, PgtConfig};
use seeker_ml::BinaryMetrics;

use crate::datasets::{world, Preset};
use crate::harness::{baseline_suite, default_config, eval_pairs, run_friendseeker};
use crate::report::{fmt3, Table};

/// FriendSeeker vs PGT vs the paper's four baselines.
pub fn pgt_comparison(seed: u64) -> Vec<Table> {
    let mut tables = Vec::new();
    for preset in Preset::both() {
        let w = world(preset, seed);
        let (pairs, labels) = eval_pairs(&w.target);
        let mut t = Table::new(
            format!("Extension ({}): PGT vs FriendSeeker and the paper's baselines", preset.name()),
            &["method", "F1", "Precision", "Recall"],
        );
        let run = run_friendseeker(&default_config(), &w.train, &w.target);
        t.push_row(vec![
            "FriendSeeker".into(),
            fmt3(run.metrics.f1()),
            fmt3(run.metrics.precision()),
            fmt3(run.metrics.recall()),
        ]);
        let pgt = PgtBaseline::fit(&PgtConfig::default(), &w.train);
        let preds = pgt.predict(&w.target, &pairs);
        let m = BinaryMetrics::from_predictions(&preds, &labels);
        t.push_row(vec![
            "pgt (Wang et al. [5])".into(),
            fmt3(m.f1()),
            fmt3(m.precision()),
            fmt3(m.recall()),
        ]);
        seeker_obs::info!("  [extra/{}] pgt: F1={:.3}", preset.name(), m.f1());
        for method in baseline_suite(&w.train) {
            let preds = method.predict(&w.target, &pairs);
            let m = BinaryMetrics::from_predictions(&preds, &labels);
            t.push_row(vec![
                method.name().to_string(),
                fmt3(m.f1()),
                fmt3(m.precision()),
                fmt3(m.recall()),
            ]);
        }
        tables.push(t);
    }
    tables
}
