//! Fig. 11–13: FriendSeeker against the four baselines — overall, bucketed
//! by co-location count, and bucketed by pair check-in volume — plus the
//! paper's hidden-friend headline claims (sparse users, cyber friends).

use seeker_ml::BinaryMetrics;
use seeker_trace::UserPair;

use crate::datasets::{world, Preset, World};
use crate::harness::{baseline_suite, default_config, eval_pairs, run_friendseeker};
use crate::report::{fmt3, Table};

/// Fig. 11: overall comparison of FriendSeeker vs all baselines.
pub fn fig11(seed: u64) -> Vec<Table> {
    let mut tables = Vec::new();
    for preset in Preset::both() {
        let w = world(preset, seed);
        let (pairs, labels) = eval_pairs(&w.target);
        let mut t = Table::new(
            format!("Fig. 11 ({}): FriendSeeker vs baseline models", preset.name()),
            &["method", "F1", "Precision", "Recall"],
        );
        let run = run_friendseeker(&default_config(), &w.train, &w.target);
        push_metrics(&mut t, "FriendSeeker", &run.metrics);
        for method in baseline_suite(&w.train) {
            let preds = method.predict(&w.target, &pairs);
            let m = BinaryMetrics::from_predictions(&preds, &labels);
            push_metrics(&mut t, method.name(), &m);
            seeker_obs::info!("  [fig11/{}] {}: F1={:.3}", preset.name(), method.name(), m.f1());
        }
        tables.push(t);
    }
    tables
}

fn push_metrics(t: &mut Table, name: &str, m: &BinaryMetrics) {
    t.push_row(vec![name.to_string(), fmt3(m.f1()), fmt3(m.precision()), fmt3(m.recall())]);
}

/// Buckets on the number of co-locations of a pair (Fig. 12 x-axis).
const COLO_BUCKETS: [(usize, usize, &str); 6] =
    [(0, 0, "0"), (1, 1, "1"), (2, 2, "2"), (3, 3, "3"), (4, 4, "4"), (5, usize::MAX, ">=5")];

/// Fig. 12: F1 vs the number of common locations, all methods.
///
/// Also reports the hidden-friend headline claims: recall on friend pairs
/// with **zero** co-locations, and recall on the generator's cyber edges.
pub fn fig12(seed: u64) -> Vec<Table> {
    let mut tables = Vec::new();
    for preset in Preset::both() {
        let w = world(preset, seed);
        let (pairs, labels) = eval_pairs(&w.target);
        let colo: Vec<usize> =
            pairs.iter().map(|p| w.target.colocation_count(p.lo(), p.hi())).collect();
        let run = run_friendseeker(&default_config(), &w.train, &w.target);
        let seeker_preds = run.result.predictions();
        let methods = baseline_suite(&w.train);
        let mut all_preds: Vec<(String, Vec<bool>)> =
            vec![("FriendSeeker".to_string(), seeker_preds)];
        for m in &methods {
            all_preds.push((m.name().to_string(), m.predict(&w.target, &pairs)));
        }

        let mut t = Table::new(
            format!("Fig. 12 ({}): F1 vs number of co-locations", preset.name()),
            &[
                "#co-locations",
                "n pairs",
                "FriendSeeker",
                "co-location",
                "distance",
                "walk2friends",
                "user-graph embedding",
            ],
        );
        for &(lo, hi, label) in &COLO_BUCKETS {
            let idx: Vec<usize> =
                (0..pairs.len()).filter(|&i| colo[i] >= lo && colo[i] <= hi).collect();
            if idx.is_empty() {
                continue;
            }
            let mut row = vec![label.to_string(), idx.len().to_string()];
            for (_, preds) in &all_preds {
                let sub_preds: Vec<bool> = idx.iter().map(|&i| preds[i]).collect();
                let sub_labels: Vec<bool> = idx.iter().map(|&i| labels[i]).collect();
                let m = BinaryMetrics::from_predictions(&sub_preds, &sub_labels);
                // The paper notes F1 of the co-location method is undefined
                // at zero common locations (it can never predict positive).
                row.push(if m.tp + m.fp + m.fn_ == 0 { "-".into() } else { fmt3(m.f1()) });
            }
            t.push_row(row);
        }
        tables.push(t);
        tables.push(hidden_friend_claims(&w, &pairs, &labels, &all_preds));
    }
    tables
}

/// The §IV headline claims: recall on no-co-location friends ("identify
/// 68.13% friends sharing no common locations") and on cyber edges.
fn hidden_friend_claims(
    w: &World,
    pairs: &[UserPair],
    labels: &[bool],
    all_preds: &[(String, Vec<bool>)],
) -> Table {
    let mut t = Table::new(
        format!(
            "Hidden-friend recall ({}): friends with no co-location / cyber friends",
            w.preset.name()
        ),
        &["method", "recall (friends, 0 co-locations)", "recall (cyber friends)"],
    );
    let no_colo_idx: Vec<usize> = (0..pairs.len())
        .filter(|&i| labels[i] && w.target.colocation_count(pairs[i].lo(), pairs[i].hi()) == 0)
        .collect();
    let cyber_idx: Vec<usize> =
        (0..pairs.len()).filter(|&i| w.target_cyber.contains(&pairs[i])).collect();
    for (name, preds) in all_preds {
        let recall = |idx: &[usize]| -> String {
            if idx.is_empty() {
                return "-".into();
            }
            let hit = idx.iter().filter(|&&i| preds[i]).count();
            fmt3(hit as f64 / idx.len() as f64)
        };
        t.push_row(vec![name.clone(), recall(&no_colo_idx), recall(&cyber_idx)]);
    }
    t
}

/// Buckets on the combined check-in count of a pair (Fig. 13 x-axis).
const CHECKIN_BUCKETS: [(usize, usize, &str); 5] = [
    (0, 24, "<25"),
    (25, 49, "25-49"),
    (50, 99, "50-99"),
    (100, 199, "100-199"),
    (200, usize::MAX, ">=200"),
];

/// Fig. 13: F1 vs the number of check-ins owned by a pair, all methods,
/// plus the share of pairs per bucket (the figure's distribution overlay).
pub fn fig13(seed: u64) -> Vec<Table> {
    let mut tables = Vec::new();
    for preset in Preset::both() {
        let w = world(preset, seed);
        let (pairs, labels) = eval_pairs(&w.target);
        let volume: Vec<usize> = pairs
            .iter()
            .map(|p| w.target.checkin_count(p.lo()) + w.target.checkin_count(p.hi()))
            .collect();
        let run = run_friendseeker(&default_config(), &w.train, &w.target);
        let mut all_preds: Vec<(String, Vec<bool>)> =
            vec![("FriendSeeker".to_string(), run.result.predictions())];
        for m in baseline_suite(&w.train) {
            all_preds.push((m.name().to_string(), m.predict(&w.target, &pairs)));
        }
        let mut t = Table::new(
            format!("Fig. 13 ({}): F1 vs number of check-ins of the pair", preset.name()),
            &[
                "#check-ins",
                "share of pairs",
                "FriendSeeker",
                "co-location",
                "distance",
                "walk2friends",
                "user-graph embedding",
            ],
        );
        for &(lo, hi, label) in &CHECKIN_BUCKETS {
            let idx: Vec<usize> =
                (0..pairs.len()).filter(|&i| volume[i] >= lo && volume[i] <= hi).collect();
            if idx.is_empty() {
                continue;
            }
            let mut row = vec![
                label.to_string(),
                format!("{:.1}%", 100.0 * idx.len() as f64 / pairs.len() as f64),
            ];
            for (_, preds) in &all_preds {
                let sub_preds: Vec<bool> = idx.iter().map(|&i| preds[i]).collect();
                let sub_labels: Vec<bool> = idx.iter().map(|&i| labels[i]).collect();
                row.push(fmt3(BinaryMetrics::from_predictions(&sub_preds, &sub_labels).f1()));
            }
            t.push_row(row);
        }
        tables.push(t);
        tables.push(sparse_friend_discovery(&w, &pairs, &labels, &run));
    }
    tables
}

/// The "29.6 % of friends discovered with < 25 check-ins" style claim:
/// recall of FriendSeeker on friend pairs in the sparsest bucket.
fn sparse_friend_discovery(
    w: &World,
    pairs: &[UserPair],
    labels: &[bool],
    run: &crate::harness::SeekerRun,
) -> Table {
    let mut t = Table::new(
        format!(
            "Sparse-friend discovery ({}): FriendSeeker recall by check-in volume",
            w.preset.name()
        ),
        &["#check-ins of pair", "friend pairs", "recall"],
    );
    let preds = run.result.predictions();
    for &(lo, hi, label) in &CHECKIN_BUCKETS {
        let idx: Vec<usize> = (0..pairs.len())
            .filter(|&i| {
                labels[i] && {
                    let v = w.target.checkin_count(pairs[i].lo())
                        + w.target.checkin_count(pairs[i].hi());
                    v >= lo && v <= hi
                }
            })
            .collect();
        if idx.is_empty() {
            continue;
        }
        let hit = idx.iter().filter(|&&i| preds[i]).count();
        t.push_row(vec![
            label.to_string(),
            idx.len().to_string(),
            fmt3(hit as f64 / idx.len() as f64),
        ]);
    }
    t
}
