//! Criterion micro-benchmarks of the primitives whose cost dominates each
//! experiment: quadtree construction, JOC building, k-hop subgraph
//! extraction, one supervised-autoencoder epoch, SVM-SMO fitting, and a
//! skip-gram pass.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use friendseeker::phase1::joc_row;
use seeker_graph::{KHopSubgraph, SocialGraph};
use seeker_ml::{Kernel, Svm, SvmConfig};
use seeker_nn::embedding::{train_skipgram, SkipGramConfig};
use seeker_nn::{SupervisedAutoencoder, SupervisedAutoencoderConfig};
use seeker_spatial::{Joc, Quadtree, SpatialTemporalDivision};
use seeker_trace::synth::{generate, SyntheticConfig};
use seeker_trace::{Dataset, UserId, UserPair};

fn dataset() -> Dataset {
    generate(&SyntheticConfig::small(9001)).unwrap().dataset
}

fn bench_quadtree(c: &mut Criterion) {
    let ds = dataset();
    c.bench_function("quadtree_build_sigma20", |b| b.iter(|| Quadtree::build(ds.pois(), 20)));
}

fn bench_joc(c: &mut Criterion) {
    let ds = dataset();
    let std = SpatialTemporalDivision::build(&ds, 30, 7.0).unwrap();
    let (a, bu) = (UserId::new(0), UserId::new(1));
    c.bench_function("joc_build_pair", |b| {
        b.iter(|| Joc::build(&std, ds.trajectory(a), ds.trajectory(bu)))
    });
    let pair = UserPair::new(a, bu);
    c.bench_function("joc_sparse_row", |b| b.iter(|| joc_row(&std, &ds, pair)));
}

fn bench_khop(c: &mut Criterion) {
    let ds = dataset();
    let g = SocialGraph::from_dataset(&ds);
    let pairs: Vec<UserPair> = (0..20u32)
        .flat_map(|i| ((i + 1)..21).map(move |j| UserPair::new(UserId::new(i), UserId::new(j))))
        .collect();
    c.bench_function("khop_extract_k3_210pairs", |b| {
        b.iter(|| {
            for &p in &pairs {
                let _ = KHopSubgraph::extract(&g, p, 3);
            }
        })
    });
}

fn bench_autoencoder_epoch(c: &mut Criterion) {
    // A representative small training problem: 128 sparse samples, 300-dim
    // input, d = 32.
    let xs: Vec<Vec<(usize, f32)>> = (0..128)
        .map(|i| (0..8).map(|j| ((i * 13 + j * 29) % 300, 1.0f32 + j as f32 * 0.1)).collect())
        .collect();
    let ys: Vec<f32> = (0..128).map(|i| (i % 2) as f32).collect();
    c.bench_function("supervised_autoencoder_epoch", |b| {
        b.iter_batched(
            || {
                let mut cfg = SupervisedAutoencoderConfig::new(300, 32);
                cfg.epochs = 1;
                SupervisedAutoencoder::new(cfg)
            },
            |mut model| model.fit(&xs, &ys),
            BatchSize::SmallInput,
        )
    });
}

fn bench_svm(c: &mut Criterion) {
    let xs: Vec<Vec<f32>> = (0..200)
        .map(|i| {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            vec![sign * (1.0 + (i as f32 * 0.01)), (i as f32 * 0.017) % 1.0]
        })
        .collect();
    let ys: Vec<bool> = (0..200).map(|i| i % 2 == 0).collect();
    let cfg = SvmConfig { kernel: Kernel::Rbf { gamma: 0.5 }, ..Default::default() };
    c.bench_function("svm_smo_fit_200x2", |b| b.iter(|| Svm::fit(&cfg, &xs, &ys)));
}

fn bench_skipgram(c: &mut Criterion) {
    let walks: Vec<Vec<usize>> =
        (0..100).map(|i| (0..20).map(|j| (i * 7 + j * 3) % 50).collect()).collect();
    let cfg = SkipGramConfig { dim: 32, epochs: 1, ..Default::default() };
    c.bench_function("skipgram_epoch_100walks", |b| b.iter(|| train_skipgram(&walks, 50, &cfg)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_quadtree, bench_joc, bench_khop, bench_autoencoder_epoch, bench_svm, bench_skipgram
}
criterion_main!(benches);
