//! An undirected social graph over a dense user-id space (Definition 5).

use std::collections::BTreeSet;

use seeker_trace::{Dataset, UserId, UserPair};

/// An undirected, simple graph whose vertices are users `0..n`.
///
/// Backed by sorted adjacency vectors for cache-friendly neighbor scans plus
/// an edge set for O(log m) membership tests.
///
/// ```
/// use seeker_graph::SocialGraph;
/// use seeker_trace::{UserId, UserPair};
///
/// let mut g = SocialGraph::new(4);
/// g.add_edge(UserPair::new(UserId::new(0), UserId::new(1)));
/// g.add_edge(UserPair::new(UserId::new(1), UserId::new(2)));
/// assert_eq!(g.n_edges(), 2);
/// assert_eq!(g.degree(UserId::new(1)), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocialGraph {
    n: usize,
    adj: Vec<Vec<UserId>>,
    edges: BTreeSet<UserPair>,
}

impl SocialGraph {
    /// Creates an empty graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        SocialGraph { n, adj: vec![Vec::new(); n], edges: BTreeSet::new() }
    }

    /// Builds a graph over `n` vertices from an edge iterator.
    ///
    /// Duplicate edges are collapsed.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is ≥ `n`.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = UserPair>) -> Self {
        let mut g = SocialGraph::new(n);
        for e in edges {
            g.add_edge(e);
        }
        g
    }

    /// Builds the ground-truth graph of a dataset.
    pub fn from_dataset(ds: &Dataset) -> Self {
        Self::from_edges(ds.n_users(), ds.friendships())
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether the edge is present.
    pub fn has_edge(&self, pair: UserPair) -> bool {
        self.edges.contains(&pair)
    }

    /// Inserts an edge; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, pair: UserPair) -> bool {
        assert!(pair.hi().index() < self.n, "edge endpoint {} out of range", pair.hi());
        if !self.edges.insert(pair) {
            return false;
        }
        insert_sorted(&mut self.adj[pair.lo().index()], pair.hi());
        insert_sorted(&mut self.adj[pair.hi().index()], pair.lo());
        true
    }

    /// Removes an edge; returns `true` if it was present.
    pub fn remove_edge(&mut self, pair: UserPair) -> bool {
        if !self.edges.remove(&pair) {
            return false;
        }
        remove_sorted(&mut self.adj[pair.lo().index()], pair.hi());
        remove_sorted(&mut self.adj[pair.hi().index()], pair.lo());
        true
    }

    /// Sorted neighbors of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: UserId) -> &[UserId] {
        &self.adj[u.index()]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: UserId) -> usize {
        self.adj[u.index()].len()
    }

    /// Iterator over all edges in canonical order.
    pub fn edges(&self) -> impl Iterator<Item = UserPair> + '_ {
        self.edges.iter().copied()
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = UserId> {
        (0..self.n as u32).map(UserId::new)
    }

    /// Number of edges present in exactly one of the two graphs.
    ///
    /// # Panics
    ///
    /// Panics if the graphs have different vertex counts.
    pub fn edge_difference(&self, other: &SocialGraph) -> usize {
        assert_eq!(self.n, other.n, "graphs must share a vertex space");
        self.edges.symmetric_difference(&other.edges).count()
    }

    /// The paper's convergence measure: the edge difference relative to
    /// `max(|G ∪ G'|, 1)` (the refinement loop stops below 1 %).
    ///
    /// Dividing by the union rather than by `|G|` keeps the ratio finite —
    /// and in `[0, 1]` — when this graph is empty, so a refinement starting
    /// from an empty `G⁰` can still converge. Identical graphs (including
    /// two empty ones) give `0.0`; disjoint edge sets give `1.0`.
    ///
    /// # Panics
    ///
    /// Panics if the graphs have different vertex counts.
    pub fn change_ratio(&self, other: &SocialGraph) -> f64 {
        let diff = self.edge_difference(other);
        let union = self.edges.union(&other.edges).count();
        diff as f64 / union.max(1) as f64
    }
}

fn insert_sorted(v: &mut Vec<UserId>, x: UserId) {
    if let Err(pos) = v.binary_search(&x) {
        v.insert(pos, x);
    }
}

fn remove_sorted(v: &mut Vec<UserId>, x: UserId) {
    if let Ok(pos) = v.binary_search(&x) {
        v.remove(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: u32, b: u32) -> UserPair {
        UserPair::new(UserId::new(a), UserId::new(b))
    }

    #[test]
    fn add_remove_roundtrip() {
        let mut g = SocialGraph::new(5);
        assert!(g.add_edge(pair(0, 1)));
        assert!(!g.add_edge(pair(1, 0)), "duplicate (symmetric) edge");
        assert!(g.has_edge(pair(0, 1)));
        assert_eq!(g.n_edges(), 1);
        assert!(g.remove_edge(pair(0, 1)));
        assert!(!g.remove_edge(pair(0, 1)));
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.degree(UserId::new(0)), 0);
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut g = SocialGraph::new(6);
        for b in [5, 2, 4, 1] {
            g.add_edge(pair(0, b));
        }
        let ns: Vec<u32> = g.neighbors(UserId::new(0)).iter().map(|u| u.raw()).collect();
        assert_eq!(ns, vec![1, 2, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_rejects_out_of_range() {
        let mut g = SocialGraph::new(2);
        g.add_edge(pair(0, 5));
    }

    #[test]
    fn edge_difference_and_change_ratio() {
        let g1 = SocialGraph::from_edges(4, [pair(0, 1), pair(1, 2)]);
        let g2 = SocialGraph::from_edges(4, [pair(0, 1), pair(2, 3)]);
        assert_eq!(g1.edge_difference(&g2), 2);
        // diff 2 over |union| 3.
        assert!((g1.change_ratio(&g2) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(g1.change_ratio(&g1), 0.0);
        let disjoint = SocialGraph::from_edges(4, [pair(0, 3)]);
        assert_eq!(g1.change_ratio(&disjoint), 1.0);
    }

    #[test]
    fn change_ratio_from_empty_graph_is_finite() {
        // Regression: the old `diff / |self|` formula returned INFINITY
        // whenever `self` was empty, so a refinement starting from an empty
        // G⁰ could never satisfy `change < threshold` on its first step.
        let empty = SocialGraph::new(4);
        let g1 = SocialGraph::from_edges(4, [pair(0, 1), pair(1, 2)]);
        assert_eq!(empty.change_ratio(&empty), 0.0);
        assert_eq!(empty.change_ratio(&g1), 1.0);
        assert_eq!(g1.change_ratio(&empty), 1.0);
    }

    #[test]
    fn from_dataset_mirrors_ground_truth() {
        use seeker_trace::synth::{generate, SyntheticConfig};
        let ds = generate(&SyntheticConfig::small(2)).unwrap().dataset;
        let g = SocialGraph::from_dataset(&ds);
        assert_eq!(g.n_edges(), ds.n_links());
        assert_eq!(g.n_vertices(), ds.n_users());
        for e in g.edges() {
            assert!(ds.are_friends(e.lo(), e.hi()));
        }
    }

    #[test]
    fn vertices_iterates_all() {
        let g = SocialGraph::new(3);
        assert_eq!(g.vertices().count(), 3);
    }
}
