//! Whole-graph analysis utilities: connected components, distances,
//! clustering and degree statistics. Used by the dataset reports and by the
//! small-world sanity checks on synthetic social graphs (the paper leans on
//! the small-world property to justify k = 3).

use std::collections::VecDeque;

use seeker_trace::UserId;

use crate::graph::SocialGraph;

/// Connected components of the graph: `membership[u]` is the component id
/// of vertex `u`, ids are dense `0..n_components` in first-seen order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    membership: Vec<u32>,
    sizes: Vec<usize>,
}

impl Components {
    /// Computes connected components by BFS.
    pub fn find(g: &SocialGraph) -> Components {
        let n = g.n_vertices();
        let mut membership = vec![u32::MAX; n];
        let mut sizes = Vec::new();
        for start in 0..n {
            if membership[start] != u32::MAX {
                continue;
            }
            let id = sizes.len() as u32;
            let mut size = 0usize;
            let mut queue = VecDeque::from([start]);
            membership[start] = id;
            while let Some(v) = queue.pop_front() {
                size += 1;
                for &w in g.neighbors(UserId::new(v as u32)) {
                    if membership[w.index()] == u32::MAX {
                        membership[w.index()] = id;
                        queue.push_back(w.index());
                    }
                }
            }
            sizes.push(size);
        }
        Components { membership, sizes }
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Component id of a vertex.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn component_of(&self, u: UserId) -> u32 {
        self.membership[u.index()]
    }

    /// Size of each component, indexed by component id.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Whether two vertices are connected.
    pub fn connected(&self, a: UserId, b: UserId) -> bool {
        self.component_of(a) == self.component_of(b)
    }
}

/// BFS distances (hop counts) from `source`; `None` for unreachable
/// vertices.
pub fn bfs_distances(g: &SocialGraph, source: UserId) -> Vec<Option<u32>> {
    let n = g.n_vertices();
    let mut dist = vec![None; n];
    dist[source.index()] = Some(0);
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        // Every vertex gets its distance before being enqueued; an unset
        // entry would be a bookkeeping bug, and skipping it is safe.
        let Some(d) = dist[v.index()] else { continue };
        for &w in g.neighbors(v) {
            if dist[w.index()].is_none() {
                dist[w.index()] = Some(d + 1);
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Local clustering coefficient of `u`: the fraction of neighbour pairs
/// that are themselves connected (0 for degree < 2).
pub fn clustering_coefficient(g: &SocialGraph, u: UserId) -> f64 {
    let nbrs = g.neighbors(u);
    let k = nbrs.len();
    if k < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            if g.has_edge(seeker_trace::UserPair::new(nbrs[i], nbrs[j])) {
                closed += 1;
            }
        }
    }
    closed as f64 / (k * (k - 1) / 2) as f64
}

/// Mean local clustering coefficient over all vertices of degree ≥ 2
/// (0 when no such vertex exists).
pub fn mean_clustering(g: &SocialGraph) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in g.vertices() {
        if g.degree(v) >= 2 {
            sum += clustering_coefficient(g, v);
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Degree statistics of a graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree (`2m / n`).
    pub mean: f64,
    /// Median degree.
    pub median: usize,
}

/// Computes degree statistics. Returns `None` for an empty vertex set.
pub fn degree_stats(g: &SocialGraph) -> Option<DegreeStats> {
    if g.n_vertices() == 0 {
        return None;
    }
    let mut degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    degrees.sort_unstable();
    Some(DegreeStats {
        min: degrees[0],
        max: degrees.last().copied().unwrap_or(0),
        mean: 2.0 * g.n_edges() as f64 / g.n_vertices() as f64,
        median: degrees[degrees.len() / 2],
    })
}

/// Estimates the mean shortest-path length of the largest component by BFS
/// from up to `samples` sources (exact when `samples >= component size`).
/// Returns `None` when the largest component has < 2 vertices.
pub fn mean_shortest_path(g: &SocialGraph, samples: usize) -> Option<f64> {
    let comps = Components::find(g);
    let largest_id = (0..comps.count() as u32).max_by_key(|&c| comps.sizes()[c as usize])?;
    let members: Vec<UserId> =
        g.vertices().filter(|&v| comps.component_of(v) == largest_id).collect();
    if members.len() < 2 {
        return None;
    }
    let step = (members.len() / samples.max(1)).max(1);
    let mut total = 0u64;
    let mut count = 0u64;
    for src in members.iter().step_by(step) {
        for (v, d) in bfs_distances(g, *src).into_iter().enumerate() {
            if let Some(d) = d {
                if d > 0 && comps.component_of(UserId::new(v as u32)) == largest_id {
                    total += d as u64;
                    count += 1;
                }
            }
        }
    }
    if count == 0 {
        None
    } else {
        Some(total as f64 / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seeker_trace::UserPair;

    fn pair(a: u32, b: u32) -> UserPair {
        UserPair::new(UserId::new(a), UserId::new(b))
    }

    /// Two components: a triangle {0,1,2} and an edge {3,4}; vertex 5 alone.
    fn sample() -> SocialGraph {
        SocialGraph::from_edges(6, [pair(0, 1), pair(1, 2), pair(0, 2), pair(3, 4)])
    }

    #[test]
    fn components_partition_vertices() {
        let g = sample();
        let c = Components::find(&g);
        assert_eq!(c.count(), 3);
        assert_eq!(c.largest(), 3);
        assert!(c.connected(UserId::new(0), UserId::new(2)));
        assert!(!c.connected(UserId::new(0), UserId::new(3)));
        let total: usize = c.sizes().iter().sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = SocialGraph::from_edges(4, [pair(0, 1), pair(1, 2), pair(2, 3)]);
        let d = bfs_distances(&g, UserId::new(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
        let g2 = sample();
        let d2 = bfs_distances(&g2, UserId::new(0));
        assert_eq!(d2[3], None, "other component unreachable");
        assert_eq!(d2[5], None);
    }

    #[test]
    fn clustering_of_triangle_and_star() {
        let g = sample();
        // Triangle: every vertex fully clustered.
        assert_eq!(clustering_coefficient(&g, UserId::new(0)), 1.0);
        // Degree-1 vertex: zero by convention.
        assert_eq!(clustering_coefficient(&g, UserId::new(3)), 0.0);
        // Star center with no closed wedges.
        let star = SocialGraph::from_edges(4, [pair(0, 1), pair(0, 2), pair(0, 3)]);
        assert_eq!(clustering_coefficient(&star, UserId::new(0)), 0.0);
        assert_eq!(mean_clustering(&star), 0.0);
        assert_eq!(mean_clustering(&g), 1.0, "only the triangle vertices qualify");
    }

    #[test]
    fn degree_stats_on_known_graph() {
        let g = sample();
        let s = degree_stats(&g).unwrap();
        assert_eq!(s.min, 0); // vertex 5
        assert_eq!(s.max, 2);
        assert!((s.mean - 2.0 * 4.0 / 6.0).abs() < 1e-12);
        // degrees sorted: [0, 1, 1, 2, 2, 2] -> upper-median at index 3.
        assert_eq!(s.median, 2);
        assert!(degree_stats(&SocialGraph::new(1)).is_some());
    }

    #[test]
    fn mean_shortest_path_of_path_graph() {
        // Path 0-1-2: distances {1,1,2} duplicated both directions -> mean 4/3.
        let g = SocialGraph::from_edges(3, [pair(0, 1), pair(1, 2)]);
        let m = mean_shortest_path(&g, 10).unwrap();
        assert!((m - 4.0 / 3.0).abs() < 1e-9, "got {m}");
    }

    #[test]
    fn mean_shortest_path_none_for_edgeless() {
        let g = SocialGraph::new(3);
        assert!(mean_shortest_path(&g, 5).is_none());
    }

    #[test]
    fn small_world_property_of_synthetic_graphs() {
        use seeker_trace::synth::{generate, SyntheticConfig};
        let ds = generate(&SyntheticConfig::small(7)).unwrap().dataset;
        let g = SocialGraph::from_dataset(&ds);
        // Community structure → high clustering; bridges → short paths.
        assert!(mean_clustering(&g) > 0.1, "clustering {}", mean_clustering(&g));
        let mspl = mean_shortest_path(&g, 20).unwrap();
        assert!(mspl < 6.0, "mean shortest path {mspl} violates small-world expectation");
    }
}

/// Counts the triangles of the graph (each counted once) and the number of
/// connected vertex triples ("wedges"), returning `(triangles, wedges)`.
/// The global transitivity is `3·triangles / wedges`.
pub fn triangle_census(g: &SocialGraph) -> (u64, u64) {
    let mut triangles = 0u64;
    let mut wedges = 0u64;
    for v in g.vertices() {
        let nbrs = g.neighbors(v);
        let k = nbrs.len() as u64;
        wedges += k.saturating_sub(1) * k / 2;
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                if g.has_edge(seeker_trace::UserPair::new(nbrs[i], nbrs[j])) {
                    triangles += 1;
                }
            }
        }
    }
    // Every triangle was seen once per corner.
    (triangles / 3, wedges)
}

/// Global transitivity `3·triangles / wedges` (0 when there are no wedges).
pub fn transitivity(g: &SocialGraph) -> f64 {
    let (t, w) = triangle_census(g);
    if w == 0 {
        0.0
    } else {
        3.0 * t as f64 / w as f64
    }
}

#[cfg(test)]
mod triangle_tests {
    use super::*;
    use seeker_trace::{UserId, UserPair};

    fn pair(a: u32, b: u32) -> UserPair {
        UserPair::new(UserId::new(a), UserId::new(b))
    }

    #[test]
    fn triangle_census_on_known_graphs() {
        // One triangle.
        let tri = SocialGraph::from_edges(3, [pair(0, 1), pair(1, 2), pair(0, 2)]);
        assert_eq!(triangle_census(&tri), (1, 3));
        assert!((transitivity(&tri) - 1.0).abs() < 1e-12);
        // A path has wedges but no triangles.
        let path = SocialGraph::from_edges(3, [pair(0, 1), pair(1, 2)]);
        assert_eq!(triangle_census(&path), (0, 1));
        assert_eq!(transitivity(&path), 0.0);
        // K4 has 4 triangles and 12 wedges.
        let mut k4 = SocialGraph::new(4);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                k4.add_edge(pair(i, j));
            }
        }
        assert_eq!(triangle_census(&k4), (4, 12));
        assert!((transitivity(&k4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_has_zero_transitivity() {
        let g = SocialGraph::new(5);
        assert_eq!(triangle_census(&g), (0, 0));
        assert_eq!(transitivity(&g), 0.0);
    }
}
