//! Classic link-prediction heuristics (common neighbours, Jaccard,
//! Adamic–Adar, preferential attachment, Katz), used as comparison features
//! and by the baseline attacks.

use seeker_trace::{UserId, UserPair};

use crate::graph::SocialGraph;

/// Number of common neighbours of the pair.
pub fn common_neighbors(g: &SocialGraph, pair: UserPair) -> usize {
    sorted_intersection(g.neighbors(pair.lo()), g.neighbors(pair.hi())).count()
}

/// Jaccard similarity of the two neighbourhoods (0 when both are empty).
pub fn jaccard(g: &SocialGraph, pair: UserPair) -> f64 {
    let a = g.neighbors(pair.lo());
    let b = g.neighbors(pair.hi());
    let inter = sorted_intersection(a, b).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Adamic–Adar index: `Σ 1/ln(deg(z))` over common neighbours `z`.
///
/// Common neighbours of degree 1 cannot exist (they are adjacent to both
/// endpoints), so the logarithm is always positive.
pub fn adamic_adar(g: &SocialGraph, pair: UserPair) -> f64 {
    sorted_intersection(g.neighbors(pair.lo()), g.neighbors(pair.hi()))
        .map(|z| {
            let d = g.degree(z) as f64;
            1.0 / d.ln()
        })
        .sum()
}

/// Preferential attachment score: `deg(a) · deg(b)`.
pub fn preferential_attachment(g: &SocialGraph, pair: UserPair) -> f64 {
    (g.degree(pair.lo()) * g.degree(pair.hi())) as f64
}

/// Truncated Katz index: `Σ_{l=1..max_len} βˡ · #walks_l(a, b)`.
///
/// Computed by propagating an indicator vector through the adjacency
/// structure `max_len` times — O(max_len · m) per query, no matrix powers.
///
/// # Panics
///
/// Panics if `max_len == 0` or `beta` is not finite and positive.
pub fn katz(g: &SocialGraph, pair: UserPair, beta: f64, max_len: usize) -> f64 {
    assert!(max_len >= 1, "katz needs max_len >= 1");
    assert!(beta.is_finite() && beta > 0.0, "katz needs positive finite beta");
    let n = g.n_vertices();
    let mut walks = vec![0.0f64; n];
    walks[pair.lo().index()] = 1.0;
    let mut score = 0.0;
    let mut beta_l = 1.0;
    for _ in 1..=max_len {
        beta_l *= beta;
        let mut next = vec![0.0f64; n];
        for v in g.vertices() {
            let w = walks[v.index()];
            // lint:allow(float-eq) -- exact-zero guard before division, not a tolerance test
            if w == 0.0 {
                continue;
            }
            for &u in g.neighbors(v) {
                next[u.index()] += w;
            }
        }
        score += beta_l * next[pair.hi().index()];
        walks = next;
    }
    score
}

fn sorted_intersection<'a>(a: &'a [UserId], b: &'a [UserId]) -> impl Iterator<Item = UserId> + 'a {
    SortedIntersection { a, b, i: 0, j: 0 }
}

struct SortedIntersection<'a> {
    a: &'a [UserId],
    b: &'a [UserId],
    i: usize,
    j: usize,
}

impl Iterator for SortedIntersection<'_> {
    type Item = UserId;

    fn next(&mut self) -> Option<UserId> {
        while self.i < self.a.len() && self.j < self.b.len() {
            match self.a[self.i].cmp(&self.b[self.j]) {
                std::cmp::Ordering::Less => self.i += 1,
                std::cmp::Ordering::Greater => self.j += 1,
                std::cmp::Ordering::Equal => {
                    let out = self.a[self.i];
                    self.i += 1;
                    self.j += 1;
                    return Some(out);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: u32, b: u32) -> UserPair {
        UserPair::new(UserId::new(a), UserId::new(b))
    }

    /// 0-2, 1-2, 0-3, 1-3, 3-4: users 0 and 1 share neighbours {2, 3}.
    fn wedge() -> SocialGraph {
        SocialGraph::from_edges(5, [pair(0, 2), pair(1, 2), pair(0, 3), pair(1, 3), pair(3, 4)])
    }

    #[test]
    fn common_neighbors_counts_shared() {
        let g = wedge();
        assert_eq!(common_neighbors(&g, pair(0, 1)), 2);
        assert_eq!(common_neighbors(&g, pair(0, 4)), 1); // via 3
        assert_eq!(common_neighbors(&g, pair(2, 4)), 0); // N(2)={0,1}, N(4)={3}
    }

    #[test]
    fn jaccard_bounds_and_values() {
        let g = wedge();
        // N(0) = {2,3}, N(1) = {2,3} -> jaccard 1.0
        assert_eq!(jaccard(&g, pair(0, 1)), 1.0);
        // N(0) = {2,3}, N(4) = {3} -> 1/2
        assert!((jaccard(&g, pair(0, 4)) - 0.5).abs() < 1e-12);
        let empty = SocialGraph::new(3);
        assert_eq!(jaccard(&empty, pair(0, 1)), 0.0);
    }

    #[test]
    fn adamic_adar_weights_low_degree_neighbors_higher() {
        let g = wedge();
        // Common neighbours of (0,1): 2 (deg 2) and 3 (deg 3).
        let expected = 1.0 / 2.0f64.ln() + 1.0 / 3.0f64.ln();
        assert!((adamic_adar(&g, pair(0, 1)) - expected).abs() < 1e-12);
    }

    #[test]
    fn preferential_attachment_is_degree_product() {
        let g = wedge();
        assert_eq!(preferential_attachment(&g, pair(0, 1)), 4.0);
        assert_eq!(preferential_attachment(&g, pair(3, 4)), 3.0);
    }

    #[test]
    fn katz_counts_walks() {
        // Path graph 0-1-2: one length-2 walk from 0 to 2, no length-1.
        let g = SocialGraph::from_edges(3, [pair(0, 1), pair(1, 2)]);
        let beta = 0.5;
        // walks: l=1: 0; l=2: 1 (0-1-2); l=3: 0 walks from 0 to 2 of length 3.
        let score = katz(&g, pair(0, 2), beta, 3);
        assert!((score - beta * beta).abs() < 1e-12, "got {score}");
        // Direct neighbours get the first-order term.
        let s01 = katz(&g, pair(0, 1), beta, 1);
        assert!((s01 - beta).abs() < 1e-12);
    }

    #[test]
    fn katz_monotone_in_max_len() {
        let g = wedge();
        let p = pair(0, 1);
        let mut prev = 0.0;
        for l in 1..6 {
            let s = katz(&g, p, 0.1, l);
            assert!(s >= prev - 1e-15, "katz must be non-decreasing in max_len");
            prev = s;
        }
    }

    #[test]
    #[should_panic(expected = "max_len")]
    fn katz_rejects_zero_length() {
        let g = wedge();
        let _ = katz(&g, pair(0, 1), 0.5, 0);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn katz_rejects_bad_beta() {
        let g = wedge();
        let _ = katz(&g, pair(0, 1), f64::NAN, 2);
    }
}
