//! # seeker-graph
//!
//! Graph substrate for the FriendSeeker reproduction: undirected social
//! graphs over dense user ids, the paper's *k-hop reachable subgraph*
//! (§III-C-1, Theorem 1) and the classic link-prediction heuristics used by
//! baselines and ablations.
//!
//! ```
//! use seeker_graph::{KHopSubgraph, SocialGraph};
//! use seeker_trace::{UserId, UserPair};
//!
//! let pair = |a, b| UserPair::new(UserId::new(a), UserId::new(b));
//! let g = SocialGraph::from_edges(4, [pair(0, 2), pair(2, 1), pair(0, 3), pair(3, 1)]);
//! let sub = KHopSubgraph::extract(&g, pair(0, 1), 3);
//! assert_eq!(sub.n_paths_of_len(2), 2); // 0-2-1 and 0-3-1
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Degree/component/path statistics over social graphs.
pub mod analysis;
mod delta;
mod graph;
/// Classic link-prediction scores (CN, Jaccard, AA, RA).
pub mod heuristics;
mod khop;

/// Edge-set diffs and dirty-vertex influence sets for incremental refinement.
pub use delta::{changed_edges, influence_set, influence_set_seeded};
/// Undirected friendship graph with O(1) edge tests.
pub use graph::SocialGraph;
/// k-hop reachable subgraphs (Definition 6, Theorem 1).
pub use khop::{all_paths_of_length, count_paths_of_length, KHopSubgraph};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use seeker_trace::{UserId, UserPair};
    use std::collections::BTreeSet;

    fn arb_graph(max_n: usize) -> impl Strategy<Value = SocialGraph> {
        (2..max_n).prop_flat_map(|n| {
            let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..n * 3);
            edges.prop_map(move |raw| {
                let mut g = SocialGraph::new(n);
                for (a, b) in raw {
                    if a != b {
                        g.add_edge(UserPair::new(UserId::new(a), UserId::new(b)));
                    }
                }
                g
            })
        })
    }

    proptest! {
        #[test]
        fn degree_sum_is_twice_edges(g in arb_graph(24)) {
            let sum: usize = g.vertices().map(|v| g.degree(v)).sum();
            prop_assert_eq!(sum, 2 * g.n_edges());
        }

        #[test]
        fn khop_theorem1_invariants(g in arb_graph(16), k in 2usize..5) {
            // For every pair: edges are length-disjoint and every path is a
            // valid simple path of the original graph.
            let n = g.n_vertices() as u32;
            for a in 0..n {
                for b in (a + 1)..n {
                    let pair = UserPair::new(UserId::new(a), UserId::new(b));
                    let sub = KHopSubgraph::extract(&g, pair, k);
                    let mut seen_edges: BTreeSet<UserPair> = BTreeSet::new();
                    let mut seen_mids: BTreeSet<UserId> = BTreeSet::new();
                    for (l, paths) in sub.groups() {
                        prop_assert!(l >= 2 && l <= k);
                        let mut level_edges = BTreeSet::new();
                        let mut level_mids = BTreeSet::new();
                        for p in paths {
                            prop_assert_eq!(p.len(), l + 1);
                            prop_assert_eq!(p[0].index() as u32, a);
                            prop_assert_eq!(p.last().unwrap().index() as u32, b);
                            let uniq: BTreeSet<_> = p.iter().collect();
                            prop_assert_eq!(uniq.len(), p.len(), "non-simple path");
                            for w in p.windows(2) {
                                prop_assert!(g.has_edge(UserPair::new(w[0], w[1])));
                                level_edges.insert(UserPair::new(w[0], w[1]));
                            }
                            level_mids.extend(p[1..p.len() - 1].iter().copied());
                        }
                        prop_assert!(seen_edges.intersection(&level_edges).next().is_none(),
                            "edge shared between path lengths");
                        prop_assert!(seen_mids.intersection(&level_mids).next().is_none(),
                            "intermediate shared between path lengths");
                        seen_edges.extend(level_edges);
                        seen_mids.extend(level_mids);
                    }
                }
            }
        }

        #[test]
        fn jaccard_in_unit_interval(g in arb_graph(20)) {
            let n = g.n_vertices() as u32;
            for a in 0..n {
                for b in (a + 1)..n {
                    let j = heuristics::jaccard(&g, UserPair::new(UserId::new(a), UserId::new(b)));
                    prop_assert!((0.0..=1.0).contains(&j));
                }
            }
        }

        #[test]
        fn change_ratio_zero_iff_equal(g in arb_graph(16)) {
            prop_assert_eq!(g.change_ratio(&g), 0.0);
        }
    }
}
