//! k-hop reachable subgraph extraction (§III-C-1 of the paper).
//!
//! For a user pair `(a, b)` the k-hop reachable subgraph collects all paths
//! of length 2..=k between them, *shortest lengths first*, removing the
//! intermediate vertices of already-collected paths from the working graph
//! before looking for longer paths. Theorem 1 of the paper follows from this
//! construction: every retained path is an induced path, and paths of
//! different lengths share no edges (or intermediate vertices).

use std::collections::BTreeMap;

use seeker_trace::{UserId, UserPair};

use crate::graph::SocialGraph;

/// The k-hop reachable subgraph between a pair of users.
///
/// Stored as the collected paths grouped by length; each path is the full
/// vertex sequence `a, v₁, …, b`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KHopSubgraph {
    pair: UserPair,
    k: usize,
    paths_by_len: BTreeMap<usize, Vec<Vec<UserId>>>,
}

impl KHopSubgraph {
    /// Extracts the k-hop reachable subgraph of `pair` from `graph`.
    ///
    /// Follows the paper's three-step procedure:
    /// 1. start with path length `l = 2` and an empty subgraph;
    /// 2. find **all** length-`l` paths between the endpoints in the working
    ///    graph, add them to the subgraph, then delete every intermediate
    ///    vertex of the found paths (with incident edges) from the working
    ///    graph;
    /// 3. increment `l` and repeat while `l ≤ k`.
    ///
    /// The direct edge `a–b` (a length-1 path), if present, is *not* part of
    /// the subgraph — the feature describes indirect reachability.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint of `pair` is outside `graph`'s vertex space, or
    /// if `k < 2`.
    pub fn extract(graph: &SocialGraph, pair: UserPair, k: usize) -> Self {
        seeker_obs::counter!("graph.khop.extractions", 1);
        assert!(k >= 2, "k-hop subgraphs require k >= 2, got {k}");
        assert!(
            pair.hi().index() < graph.n_vertices(),
            "pair endpoint {} outside graph",
            pair.hi()
        );
        let (a, b) = pair.as_tuple();
        // Working copy: we only ever *disable* vertices, so a boolean mask is
        // cheaper than cloning the graph.
        let mut alive = vec![true; graph.n_vertices()];
        let mut paths_by_len: BTreeMap<usize, Vec<Vec<UserId>>> = BTreeMap::new();

        for l in 2..=k {
            let found = paths_of_length(graph, &alive, a, b, l);
            if found.is_empty() {
                continue;
            }
            for path in &found {
                for v in &path[1..path.len() - 1] {
                    alive[v.index()] = false;
                }
            }
            paths_by_len.insert(l, found);
        }
        #[cfg(debug_assertions)]
        {
            // Theorem 1: interior vertices consumed at length l are disabled
            // for every longer length, so batches of different lengths are
            // internally vertex-disjoint.
            let mut consumed = std::collections::BTreeSet::new();
            for paths in paths_by_len.values() {
                let batch: std::collections::BTreeSet<UserId> = paths
                    .iter()
                    .flat_map(|p| p[1..p.len() - 1].iter().copied())
                    // Debug-assertions-only check. lint:allow(hot-alloc)
                    .collect();
                debug_assert!(
                    batch.is_disjoint(&consumed),
                    "Theorem 1 violated: interior vertex reused across path lengths for {pair}"
                );
                consumed.extend(batch);
            }
        }
        KHopSubgraph { pair, k, paths_by_len }
    }

    /// The pair this subgraph connects.
    pub fn pair(&self) -> UserPair {
        self.pair
    }

    /// The `k` used during extraction.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether no connecting path of length ≤ k exists.
    pub fn is_empty(&self) -> bool {
        self.paths_by_len.is_empty()
    }

    /// All collected paths of length `l` (vertex sequences, endpoints
    /// included). Empty slice when none were found.
    pub fn paths_of_len(&self, l: usize) -> &[Vec<UserId>] {
        self.paths_by_len.get(&l).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of collected paths of length `l`.
    pub fn n_paths_of_len(&self, l: usize) -> usize {
        self.paths_of_len(l).len()
    }

    /// Total number of collected paths.
    pub fn n_paths(&self) -> usize {
        self.paths_by_len.values().map(Vec::len).sum()
    }

    /// Iterator over `(length, paths)` groups in increasing length order.
    pub fn groups(&self) -> impl Iterator<Item = (usize, &[Vec<UserId>])> {
        self.paths_by_len.iter().map(|(&l, ps)| (l, ps.as_slice()))
    }

    /// All edges of the subgraph, as canonical pairs, without duplicates
    /// across paths of the same length (paths of different lengths cannot
    /// share edges by construction).
    pub fn edges(&self) -> Vec<UserPair> {
        let mut out: Vec<UserPair> = Vec::new();
        for paths in self.paths_by_len.values() {
            for path in paths {
                for w in path.windows(2) {
                    out.push(UserPair::new(w[0], w[1]));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Counts length-`l` paths between `a` and `b` in `graph` without building a
/// subgraph — the raw statistic behind Fig. 5 of the paper.
pub fn count_paths_of_length(graph: &SocialGraph, a: UserId, b: UserId, l: usize) -> usize {
    let alive = vec![true; graph.n_vertices()];
    paths_of_length(graph, &alive, a, b, l).len()
}

/// Enumerates **all** simple paths of exactly `l` edges between `a` and `b`,
/// without the shortest-first consumption of Theorem 1. This is the naive
/// alternative the k-hop construction improves on; exposed for the ablation
/// benches.
pub fn all_paths_of_length(
    graph: &SocialGraph,
    a: UserId,
    b: UserId,
    l: usize,
) -> Vec<Vec<UserId>> {
    let alive = vec![true; graph.n_vertices()];
    paths_of_length(graph, &alive, a, b, l)
}

/// Enumerates all simple paths of exactly `l` edges from `a` to `b` that use
/// only `alive` intermediate vertices.
fn paths_of_length(
    graph: &SocialGraph,
    alive: &[bool],
    a: UserId,
    b: UserId,
    l: usize,
) -> Vec<Vec<UserId>> {
    let mut out = Vec::new();
    let mut stack: Vec<UserId> = vec![a];
    let mut on_path = vec![false; graph.n_vertices()];
    on_path[a.index()] = true;
    dfs(graph, alive, b, l, &mut stack, &mut on_path, &mut out);
    out
}

fn dfs(
    graph: &SocialGraph,
    alive: &[bool],
    target: UserId,
    l: usize,
    stack: &mut Vec<UserId>,
    on_path: &mut [bool],
    out: &mut Vec<Vec<UserId>>,
) {
    // Callers seed the stack with the source vertex; an empty stack means
    // there is no path prefix to extend.
    let Some(&current) = stack.last() else { return };
    let remaining = l + 1 - stack.len();
    if remaining == 0 {
        if current == target {
            out.push(stack.clone());
        }
        return;
    }
    // The endpoint can only appear as the final vertex.
    for &next in graph.neighbors(current) {
        if on_path[next.index()] {
            continue;
        }
        if next == target {
            if remaining == 1 {
                stack.push(next);
                // Each completed path must be materialized into the result
                // set; the clone IS the output. lint:allow(hot-alloc)
                out.push(stack.clone());
                stack.pop();
            }
            continue;
        }
        // Intermediate vertices must be alive (not consumed by shorter paths).
        if !alive[next.index()] {
            continue;
        }
        if remaining == 1 {
            continue; // would need to end here but `next != target`
        }
        stack.push(next);
        on_path[next.index()] = true;
        dfs(graph, alive, target, l, stack, on_path, out);
        on_path[next.index()] = false;
        stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn pair(a: u32, b: u32) -> UserPair {
        UserPair::new(UserId::new(a), UserId::new(b))
    }

    /// The Fig. 4 example graph of the paper: vertices a=0, b=1, c=2, d=3,
    /// e=4, f=5, g=6, h=7.
    /// Edges: a-c, c-b (len-2 path a-c-b), c-e, e-b, a-f, f-h, h-b, f-g, g-h,
    /// a-d, d-e.
    fn fig4() -> SocialGraph {
        SocialGraph::from_edges(
            8,
            [
                pair(0, 2), // a-c
                pair(2, 1), // c-b
                pair(2, 4), // c-e
                pair(4, 1), // e-b
                pair(0, 5), // a-f
                pair(5, 7), // f-h
                pair(7, 1), // h-b
                pair(5, 6), // f-g
                pair(6, 7), // g-h
                pair(0, 3), // a-d
                pair(3, 4), // d-e
            ],
        )
    }

    #[test]
    fn fig4_example_matches_paper() {
        let g = fig4();
        let sub = KHopSubgraph::extract(&g, pair(0, 1), 3);
        // Length 2: a-c-b. Consumes c.
        let l2: Vec<_> = sub.paths_of_len(2).to_vec();
        assert_eq!(l2.len(), 1);
        assert_eq!(l2[0], vec![UserId::new(0), UserId::new(2), UserId::new(1)]);
        // Length 3: with c consumed, a-c-e-b is gone; a-f-h-b and a-d-e-b
        // remain.
        let l3: BTreeSet<Vec<u32>> =
            sub.paths_of_len(3).iter().map(|p| p.iter().map(|u| u.raw()).collect()).collect();
        let expected: BTreeSet<Vec<u32>> =
            [vec![0, 5, 7, 1], vec![0, 3, 4, 1]].into_iter().collect();
        assert_eq!(l3, expected);
        // The paper notes a-f-g-h-b (length 4) is pruned during G³ anyway.
        assert_eq!(sub.n_paths(), 3);
    }

    #[test]
    fn direct_edge_is_not_a_path() {
        let g = SocialGraph::from_edges(2, [pair(0, 1)]);
        let sub = KHopSubgraph::extract(&g, pair(0, 1), 3);
        assert!(sub.is_empty());
    }

    #[test]
    fn disconnected_pair_yields_empty_subgraph() {
        let g = SocialGraph::from_edges(4, [pair(0, 1), pair(2, 3)]);
        let sub = KHopSubgraph::extract(&g, pair(0, 2), 4);
        assert!(sub.is_empty());
        assert_eq!(sub.n_paths(), 0);
        assert!(sub.edges().is_empty());
    }

    #[test]
    fn shorter_paths_consume_vertices_of_longer_candidates() {
        // a-x-b and a-x-y-b share x; after the length-2 round consumes x,
        // the length-3 candidate must disappear.
        let g = SocialGraph::from_edges(4, [pair(0, 2), pair(2, 1), pair(2, 3), pair(3, 1)]);
        let sub = KHopSubgraph::extract(&g, pair(0, 1), 3);
        assert_eq!(sub.n_paths_of_len(2), 1);
        assert_eq!(sub.n_paths_of_len(3), 0);
    }

    #[test]
    fn paths_of_different_lengths_share_no_edges() {
        let g = fig4();
        let sub = KHopSubgraph::extract(&g, pair(0, 1), 4);
        let mut seen: BTreeSet<UserPair> = BTreeSet::new();
        for (_, paths) in sub.groups() {
            let mut this_len: BTreeSet<UserPair> = BTreeSet::new();
            for p in paths {
                for w in p.windows(2) {
                    this_len.insert(UserPair::new(w[0], w[1]));
                }
            }
            assert!(seen.intersection(&this_len).next().is_none(), "edge reuse across lengths");
            seen.extend(this_len);
        }
    }

    #[test]
    fn all_paths_exist_in_original_graph() {
        let g = fig4();
        let sub = KHopSubgraph::extract(&g, pair(0, 1), 4);
        for (l, paths) in sub.groups() {
            for p in paths {
                assert_eq!(p.len(), l + 1);
                assert_eq!(p[0], UserId::new(0));
                assert_eq!(*p.last().unwrap(), UserId::new(1));
                for w in p.windows(2) {
                    assert!(g.has_edge(UserPair::new(w[0], w[1])), "missing edge {w:?}");
                }
            }
        }
    }

    #[test]
    fn count_paths_matches_enumeration() {
        let g = fig4();
        assert_eq!(count_paths_of_length(&g, UserId::new(0), UserId::new(1), 2), 1);
        // Without consumption: a-c-e-b, a-d-e-b, a-f-h-b.
        assert_eq!(count_paths_of_length(&g, UserId::new(0), UserId::new(1), 3), 3);
        // a-f-g-h-b and a-d-e-c-b.
        assert_eq!(count_paths_of_length(&g, UserId::new(0), UserId::new(1), 4), 2);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn rejects_k_below_two() {
        let g = SocialGraph::new(3);
        let _ = KHopSubgraph::extract(&g, pair(0, 1), 1);
    }

    #[test]
    fn paths_are_simple() {
        // A dense-ish graph to stress the DFS.
        let mut g = SocialGraph::new(7);
        for i in 0..7u32 {
            for j in (i + 1)..7 {
                if (i + j) % 2 == 0 || j == i + 1 {
                    g.add_edge(pair(i, j));
                }
            }
        }
        let sub = KHopSubgraph::extract(&g, pair(0, 6), 4);
        for (_, paths) in sub.groups() {
            for p in paths {
                let set: BTreeSet<_> = p.iter().collect();
                assert_eq!(set.len(), p.len(), "path revisits a vertex: {p:?}");
            }
        }
    }

    #[test]
    fn intermediates_unique_across_lengths() {
        let g = fig4();
        let sub = KHopSubgraph::extract(&g, pair(0, 1), 4);
        let mut seen: BTreeSet<UserId> = BTreeSet::new();
        for (_, paths) in sub.groups() {
            let mut this: BTreeSet<UserId> = BTreeSet::new();
            for p in paths {
                this.extend(p[1..p.len() - 1].iter().copied());
            }
            assert!(
                seen.intersection(&this).next().is_none(),
                "intermediate vertex reused across lengths"
            );
            seen.extend(this);
        }
    }
}
