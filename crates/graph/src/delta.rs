//! Edge-set deltas and dirty-vertex influence sets.
//!
//! These are the graph-side primitives behind incremental phase-2
//! refinement: given two consecutive refinement graphs `Gⁱ⁻¹` and `Gⁱ`, a
//! pair's composite feature can only change if its k-hop reachable subgraph
//! can see a changed edge. Every vertex of a length-≤k simple path between
//! `a` and `b` lies within distance `k - 1` of `a` (and of `b`), so the set
//! of pairs whose features may differ is exactly the pairs with *both*
//! endpoints within BFS depth `k - 1` of some changed-edge endpoint —
//! measured in the union graph, since a path may exist in either version.

use std::collections::VecDeque;

use seeker_trace::UserPair;

use crate::graph::SocialGraph;

/// The symmetric difference of two graphs' edge sets, in sorted order.
///
/// # Panics
///
/// Panics if the graphs have different vertex counts.
pub fn changed_edges(a: &SocialGraph, b: &SocialGraph) -> Vec<UserPair> {
    assert_eq!(
        a.n_vertices(),
        b.n_vertices(),
        "edge diff requires graphs over the same vertex set"
    );
    // Both edge iterators are in canonical sorted order, so a linear merge
    // yields the symmetric difference already sorted.
    let mut out = Vec::new();
    let mut ia = a.edges().peekable();
    let mut ib = b.edges().peekable();
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(&ea), Some(&eb)) => match ea.cmp(&eb) {
                std::cmp::Ordering::Less => {
                    out.push(ea);
                    ia.next();
                }
                std::cmp::Ordering::Greater => {
                    out.push(eb);
                    ib.next();
                }
                std::cmp::Ordering::Equal => {
                    ia.next();
                    ib.next();
                }
            },
            (Some(&ea), None) => {
                out.push(ea);
                ia.next();
            }
            (None, Some(&eb)) => {
                out.push(eb);
                ib.next();
            }
            (None, None) => break,
        }
    }
    out
}

/// Marks every vertex within BFS depth `radius` of a changed-edge endpoint.
///
/// The BFS runs over the *union* adjacency of `old` and `new`: a pair's
/// k-hop subgraph in either graph can only reach vertices adjacent in that
/// graph, so the union dominates both. Returns a dense `Vec<bool>` indexed
/// by vertex; `seeds` are marked even with `radius == 0`.
///
/// # Panics
///
/// Panics if the graphs have different vertex counts.
pub fn influence_set(
    old: &SocialGraph,
    new: &SocialGraph,
    seeds: &[UserPair],
    radius: usize,
) -> Vec<bool> {
    assert_eq!(
        old.n_vertices(),
        new.n_vertices(),
        "influence set requires graphs over the same vertex set"
    );
    let n = old.n_vertices();
    let mut depth: Vec<Option<usize>> = vec![None; n];
    let mut queue = VecDeque::new();
    for pair in seeds {
        for u in [pair.lo(), pair.hi()] {
            if depth[u.index()].is_none() {
                depth[u.index()] = Some(0);
                queue.push_back(u);
            }
        }
    }
    while let Some(u) = queue.pop_front() {
        let d = depth[u.index()].unwrap_or(0);
        if d == radius {
            continue;
        }
        for &v in old.neighbors(u).iter().chain(new.neighbors(u)) {
            if depth[v.index()].is_none() {
                depth[v.index()] = Some(d + 1);
                queue.push_back(v);
            }
        }
    }
    depth.into_iter().map(|d| d.is_some()).collect()
}

/// [`influence_set`] with additional vertex seeds at depth 0.
///
/// Incremental ingestion dirties pairs two ways: edges that changed between
/// the previous run's final graph and the new `G⁰`, and users whose own
/// check-ins changed (their presence rows feed every composite feature that
/// reads an incident edge). Both kinds of dirt propagate the same way —
/// BFS over the union adjacency — so this variant seeds the frontier with
/// the changed-edge endpoints *and* the data-dirty vertices.
///
/// # Panics
///
/// Panics if the graphs have different vertex counts, or if a vertex seed
/// is out of range.
pub fn influence_set_seeded(
    old: &SocialGraph,
    new: &SocialGraph,
    edge_seeds: &[UserPair],
    vertex_seeds: &[seeker_trace::UserId],
    radius: usize,
) -> Vec<bool> {
    assert_eq!(
        old.n_vertices(),
        new.n_vertices(),
        "influence set requires graphs over the same vertex set"
    );
    let n = old.n_vertices();
    let mut depth: Vec<Option<usize>> = vec![None; n];
    let mut queue = VecDeque::new();
    let edge_endpoints = edge_seeds.iter().flat_map(|p| [p.lo(), p.hi()]);
    for u in edge_endpoints.chain(vertex_seeds.iter().copied()) {
        if depth[u.index()].is_none() {
            depth[u.index()] = Some(0);
            queue.push_back(u);
        }
    }
    while let Some(u) = queue.pop_front() {
        let d = depth[u.index()].unwrap_or(0);
        if d == radius {
            continue;
        }
        for &v in old.neighbors(u).iter().chain(new.neighbors(u)) {
            if depth[v.index()].is_none() {
                depth[v.index()] = Some(d + 1);
                queue.push_back(v);
            }
        }
    }
    depth.into_iter().map(|d| d.is_some()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seeker_trace::UserId;

    fn pair(a: u32, b: u32) -> UserPair {
        UserPair::new(UserId::new(a), UserId::new(b))
    }

    #[test]
    fn changed_edges_is_symmetric_difference() {
        let a = SocialGraph::from_edges(4, [pair(0, 1), pair(1, 2)]);
        let b = SocialGraph::from_edges(4, [pair(1, 2), pair(2, 3)]);
        assert_eq!(changed_edges(&a, &b), vec![pair(0, 1), pair(2, 3)]);
        assert_eq!(changed_edges(&a, &a), Vec::new());
    }

    #[test]
    fn influence_set_respects_radius() {
        // Path 0-1-2-3-4-5; change edge (0,1).
        let g = SocialGraph::from_edges(
            6,
            [pair(0, 1), pair(1, 2), pair(2, 3), pair(3, 4), pair(4, 5)],
        );
        let seeds = [pair(0, 1)];
        let r0 = influence_set(&g, &g, &seeds, 0);
        assert_eq!(r0, vec![true, true, false, false, false, false]);
        let r1 = influence_set(&g, &g, &seeds, 1);
        assert_eq!(r1, vec![true, true, true, false, false, false]);
        let r2 = influence_set(&g, &g, &seeds, 2);
        assert_eq!(r2, vec![true, true, true, true, false, false]);
    }

    #[test]
    fn influence_set_uses_union_adjacency() {
        // Edge (1,2) exists only in `new`; BFS from seed 0-1 must cross it.
        let old = SocialGraph::from_edges(3, [pair(0, 1)]);
        let new = SocialGraph::from_edges(3, [pair(0, 1), pair(1, 2)]);
        let reach = influence_set(&old, &new, &[pair(0, 1)], 1);
        assert_eq!(reach, vec![true, true, true]);
        // And symmetrically when the edge only exists in `old`.
        let reach = influence_set(&new, &old, &[pair(0, 1)], 1);
        assert_eq!(reach, vec![true, true, true]);
    }

    #[test]
    fn empty_seeds_mark_nothing() {
        let g = SocialGraph::from_edges(3, [pair(0, 1)]);
        assert_eq!(influence_set(&g, &g, &[], 5), vec![false; 3]);
    }

    #[test]
    fn vertex_seeds_join_the_frontier() {
        // Path 0-1-2-3-4-5; no changed edges, vertex 3 is data-dirty.
        let g = SocialGraph::from_edges(
            6,
            [pair(0, 1), pair(1, 2), pair(2, 3), pair(3, 4), pair(4, 5)],
        );
        let r0 = influence_set_seeded(&g, &g, &[], &[UserId::new(3)], 0);
        assert_eq!(r0, vec![false, false, false, true, false, false]);
        let r1 = influence_set_seeded(&g, &g, &[], &[UserId::new(3)], 1);
        assert_eq!(r1, vec![false, false, true, true, true, false]);
        // Edge and vertex seeds combine into one frontier.
        let both = influence_set_seeded(&g, &g, &[pair(0, 1)], &[UserId::new(5)], 1);
        assert_eq!(both, vec![true, true, true, false, true, true]);
    }

    #[test]
    fn seeded_matches_unseeded_without_vertex_seeds() {
        let g = SocialGraph::from_edges(4, [pair(0, 1), pair(1, 2), pair(2, 3)]);
        let seeds = [pair(1, 2)];
        for radius in 0..3 {
            assert_eq!(
                influence_set_seeded(&g, &g, &seeds, &[], radius),
                influence_set(&g, &g, &seeds, radius)
            );
        }
    }
}
