//! # seeker-obfuscation
//!
//! The two countermeasures evaluated in §IV-D of the paper:
//!
//! - **Hiding**: remove a proportion of check-ins uniformly at random,
//!   never deleting a user's last remaining check-in;
//! - **Blurring**: replace the location of a proportion of check-ins with
//!   another POI — either in the *same* spatial grid (in-grid) or in a
//!   randomly chosen *neighbouring* grid (cross-grid).
//!
//! All mechanisms are deterministic in their seed and return a new
//! [`Dataset`] with the ground truth untouched (the defense perturbs only
//! what the attacker can see).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Countermeasures aimed at specific sensitive edges.
pub mod targeted;

use rand::prelude::*;
use rand::rngs::StdRng;
use seeker_spatial::Quadtree;
use seeker_trace::{CheckIn, Dataset, GeoPoint, PoiId, Result, TraceError};

/// The blurring flavour (§IV-D-1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlurMode {
    /// Replacement POI drawn from the same quadtree grid.
    InGrid,
    /// Replacement POI drawn from one of the four neighbouring grids
    /// (falls back to in-grid when no neighbour has POIs).
    CrossGrid,
}

/// Randomly removes `proportion` of all check-ins (deterministic in `seed`).
///
/// Mirrors the paper's safeguard: before removing a check-in, verify it is
/// not its owner's last one; otherwise skip it, preserving every user.
///
/// # Errors
///
/// Returns [`TraceError::Invalid`] if `proportion` is outside `[0, 1)`.
pub fn hide_checkins(ds: &Dataset, proportion: f64, seed: u64) -> Result<Dataset> {
    let _span = seeker_obs::span!("obfuscation.hide");
    if !(0.0..1.0).contains(&proportion) {
        return Err(TraceError::Invalid(format!("hiding proportion {proportion} outside [0, 1)")));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let target_removals = ((ds.n_checkins() as f64) * proportion).round() as usize;
    let mut remaining: Vec<usize> = ds.users().map(|u| ds.checkin_count(u)).collect();
    let mut keep = vec![true; ds.n_checkins()];
    let mut order: Vec<usize> = (0..ds.n_checkins()).collect();
    order.shuffle(&mut rng);
    let mut removed = 0usize;
    for idx in order {
        if removed >= target_removals {
            break;
        }
        let user = ds.checkins()[idx].user;
        if remaining[user.index()] <= 1 {
            continue; // never delete the last check-in of a user
        }
        keep[idx] = false;
        remaining[user.index()] -= 1;
        removed += 1;
    }
    let kept: Vec<CheckIn> =
        ds.checkins().iter().zip(keep.iter()).filter(|(_, &k)| k).map(|(&c, _)| c).collect();
    ds.with_checkins(kept)
}

/// Randomly replaces the POI of `proportion` of all check-ins with another
/// POI (deterministic in `seed`). The spatial grid structure used to define
/// "same grid" / "neighbouring grid" is a quadtree built with `sigma`.
///
/// # Errors
///
/// Returns [`TraceError::Invalid`] if `proportion` is outside `[0, 1]` or
/// the dataset has no POIs.
pub fn blur_checkins(
    ds: &Dataset,
    proportion: f64,
    mode: BlurMode,
    sigma: usize,
    seed: u64,
) -> Result<Dataset> {
    let _span = seeker_obs::span!("obfuscation.blur");
    if !(0.0..=1.0).contains(&proportion) {
        return Err(TraceError::Invalid(format!(
            "blurring proportion {proportion} outside [0, 1]"
        )));
    }
    if ds.n_pois() == 0 {
        return Err(TraceError::Invalid("no POIs to blur into".into()));
    }
    let quadtree = Quadtree::build(ds.pois(), sigma);
    let members = quadtree.grid_members(ds.pois());
    let poi_grid = quadtree.poi_grids(ds.pois());
    let mut rng = StdRng::seed_from_u64(seed);

    let n = ds.n_checkins();
    let n_blur = ((n as f64) * proportion).round() as usize;
    let mut selected = vec![false; n];
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    for &idx in order.iter().take(n_blur) {
        selected[idx] = true;
    }

    let mut out = Vec::with_capacity(n);
    for (idx, &c) in ds.checkins().iter().enumerate() {
        if !selected[idx] {
            out.push(c);
            continue;
        }
        let grid = match poi_grid[c.poi.index()] {
            Some(g) => g,
            None => {
                out.push(c);
                continue;
            }
        };
        let replacement = match mode {
            BlurMode::InGrid => pick_other_in_grid(&members[grid], c.poi, &mut rng),
            BlurMode::CrossGrid => pick_in_neighbor_grid(&quadtree, &members, grid, &mut rng)
                .or_else(|| pick_other_in_grid(&members[grid], c.poi, &mut rng)),
        };
        match replacement {
            Some(poi) => out.push(CheckIn::new(c.user, poi, c.time)),
            None => out.push(c), // single-POI grid: nothing to blur into
        }
    }
    ds.with_checkins(out)
}

/// A random POI of the grid other than `exclude`.
fn pick_other_in_grid(members: &[PoiId], exclude: PoiId, rng: &mut StdRng) -> Option<PoiId> {
    let candidates: Vec<PoiId> = members.iter().copied().filter(|&p| p != exclude).collect();
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[rng.gen_range(0..candidates.len())])
    }
}

/// A random POI from one of the four neighbouring grids of `grid`
/// (probing just beyond a random edge of the grid's bounding box, as the
/// paper describes: "randomly select one of the four neighborhoods of the
/// target grid, then randomly select another POI in the grid").
fn pick_in_neighbor_grid(
    quadtree: &Quadtree,
    members: &[Vec<PoiId>],
    grid: usize,
    rng: &mut StdRng,
) -> Option<PoiId> {
    let bb = quadtree.grid_bbox(grid);
    let mid_lat = (bb.min_lat + bb.max_lat) / 2.0;
    let mid_lon = (bb.min_lon + bb.max_lon) / 2.0;
    let eps_lat = (bb.max_lat - bb.min_lat) * 0.01 + 1e-9;
    let eps_lon = (bb.max_lon - bb.min_lon) * 0.01 + 1e-9;
    let mut directions = [
        GeoPoint::new(bb.max_lat + eps_lat, mid_lon), // north
        GeoPoint::new(bb.min_lat - eps_lat, mid_lon), // south
        GeoPoint::new(mid_lat, bb.max_lon + eps_lon), // east
        GeoPoint::new(mid_lat, bb.min_lon - eps_lon), // west
    ];
    directions.shuffle(rng);
    for probe in directions {
        if let Some(g) = quadtree.locate(probe) {
            if g != grid && !members[g].is_empty() {
                let list = &members[g];
                return Some(list[rng.gen_range(0..list.len())]);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use seeker_trace::synth::{generate, SyntheticConfig};

    fn ds() -> Dataset {
        generate(&SyntheticConfig::small(111)).unwrap().dataset
    }

    #[test]
    fn hiding_removes_requested_proportion() {
        let ds = ds();
        for prop in [0.1, 0.3, 0.5] {
            let hidden = hide_checkins(&ds, prop, 7).unwrap();
            let expected = ds.n_checkins() - ((ds.n_checkins() as f64 * prop).round() as usize);
            // Allow slack for the last-check-in guard.
            assert!(hidden.n_checkins() >= expected);
            assert!(hidden.n_checkins() < ds.n_checkins());
            assert_eq!(hidden.n_links(), ds.n_links(), "ground truth untouched");
        }
    }

    #[test]
    fn hiding_never_empties_a_user() {
        let ds = ds();
        let hidden = hide_checkins(&ds, 0.5, 3).unwrap();
        for u in hidden.users() {
            assert!(hidden.checkin_count(u) >= 1, "user {u} lost all check-ins");
        }
    }

    #[test]
    fn hiding_is_deterministic() {
        let ds = ds();
        let a = hide_checkins(&ds, 0.3, 11).unwrap();
        let b = hide_checkins(&ds, 0.3, 11).unwrap();
        assert_eq!(a.checkins(), b.checkins());
        let c = hide_checkins(&ds, 0.3, 12).unwrap();
        assert_ne!(a.checkins(), c.checkins());
    }

    #[test]
    fn hiding_zero_is_identity() {
        let ds = ds();
        let same = hide_checkins(&ds, 0.0, 1).unwrap();
        assert_eq!(same.n_checkins(), ds.n_checkins());
    }

    #[test]
    fn hiding_rejects_bad_proportion() {
        let ds = ds();
        assert!(hide_checkins(&ds, 1.0, 1).is_err());
        assert!(hide_checkins(&ds, -0.1, 1).is_err());
    }

    #[test]
    fn blurring_changes_locations_not_counts() {
        let ds = ds();
        for mode in [BlurMode::InGrid, BlurMode::CrossGrid] {
            let blurred = blur_checkins(&ds, 0.3, mode, 30, 5).unwrap();
            assert_eq!(blurred.n_checkins(), ds.n_checkins());
            assert_eq!(blurred.n_links(), ds.n_links());
            let changed = ds
                .checkins()
                .iter()
                .zip(blurred.checkins().iter())
                .filter(|(a, b)| a.poi != b.poi)
                .count();
            assert!(changed > 0, "{mode:?} changed nothing");
            // Users and timestamps are preserved as a multiset.
            let mut t1: Vec<_> = ds.checkins().iter().map(|c| (c.user, c.time)).collect();
            let mut t2: Vec<_> = blurred.checkins().iter().map(|c| (c.user, c.time)).collect();
            t1.sort_unstable();
            t2.sort_unstable();
            assert_eq!(t1, t2);
        }
    }

    #[test]
    fn in_grid_blur_stays_in_grid() {
        let ds = ds();
        let sigma = 30;
        let blurred = blur_checkins(&ds, 0.4, BlurMode::InGrid, sigma, 9).unwrap();
        let qt = Quadtree::build(ds.pois(), sigma);
        let grids = qt.poi_grids(ds.pois());
        for (a, b) in ds.checkins().iter().zip(blurred.checkins().iter()) {
            if a.user == b.user && a.time == b.time && a.poi != b.poi {
                assert_eq!(
                    grids[a.poi.index()],
                    grids[b.poi.index()],
                    "in-grid blur left the grid"
                );
            }
        }
    }

    #[test]
    fn cross_grid_blur_moves_across_grids() {
        let ds = ds();
        let sigma = 30;
        let blurred = blur_checkins(&ds, 0.4, BlurMode::CrossGrid, sigma, 9).unwrap();
        let qt = Quadtree::build(ds.pois(), sigma);
        assert!(qt.n_grids() > 1, "test needs a multi-grid division");
        let grids = qt.poi_grids(ds.pois());
        let mut crossed = 0;
        for (a, b) in ds.checkins().iter().zip(blurred.checkins().iter()) {
            if a.poi != b.poi && grids[a.poi.index()] != grids[b.poi.index()] {
                crossed += 1;
            }
        }
        assert!(crossed > 0, "cross-grid blur never left the grid");
    }

    #[test]
    fn blur_full_proportion_touches_everything_possible() {
        let ds = ds();
        let blurred = blur_checkins(&ds, 1.0, BlurMode::InGrid, 30, 2).unwrap();
        let changed = ds
            .checkins()
            .iter()
            .zip(blurred.checkins().iter())
            .filter(|(a, b)| a.poi != b.poi)
            .count();
        // Most check-ins must move (single-POI grids legitimately cannot).
        assert!(changed * 2 > ds.n_checkins(), "only {changed} moved");
    }

    #[test]
    fn blur_rejects_bad_inputs() {
        let ds = ds();
        assert!(blur_checkins(&ds, 1.5, BlurMode::InGrid, 30, 1).is_err());
        assert!(blur_checkins(&ds, -0.1, BlurMode::CrossGrid, 30, 1).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use seeker_trace::synth::{generate, SyntheticConfig};
    use std::sync::OnceLock;

    fn base() -> &'static Dataset {
        static CELL: OnceLock<Dataset> = OnceLock::new();
        CELL.get_or_init(|| generate(&SyntheticConfig::small(777)).unwrap().dataset)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Hiding removes at most the requested share and never a user's
        /// last check-in, at any ratio and seed.
        #[test]
        fn hiding_invariants(ratio in 0.0f64..0.95, seed in any::<u64>()) {
            let ds = base();
            let hidden = hide_checkins(ds, ratio, seed).unwrap();
            let target_removed = ((ds.n_checkins() as f64) * ratio).round() as usize;
            prop_assert!(ds.n_checkins() - hidden.n_checkins() <= target_removed);
            for u in hidden.users() {
                prop_assert!(hidden.checkin_count(u) >= 1);
            }
            prop_assert_eq!(hidden.n_links(), ds.n_links());
        }

        /// Blurring never changes users, timestamps or the check-in count,
        /// and replacement POIs are always valid.
        #[test]
        fn blurring_invariants(ratio in 0.0f64..1.0, cross in any::<bool>(), seed in any::<u64>()) {
            let ds = base();
            let mode = if cross { BlurMode::CrossGrid } else { BlurMode::InGrid };
            let blurred = blur_checkins(ds, ratio, mode, 30, seed).unwrap();
            prop_assert_eq!(blurred.n_checkins(), ds.n_checkins());
            let mut t1: Vec<_> = ds.checkins().iter().map(|c| (c.user, c.time)).collect();
            let mut t2: Vec<_> = blurred.checkins().iter().map(|c| (c.user, c.time)).collect();
            t1.sort_unstable();
            t2.sort_unstable();
            prop_assert_eq!(t1, t2);
            for c in blurred.checkins() {
                prop_assert!(c.poi.index() < blurred.n_pois());
            }
        }

        /// Determinism: equal seeds produce equal perturbations.
        #[test]
        fn obfuscation_deterministic(ratio in 0.05f64..0.9, seed in any::<u64>()) {
            let ds = base();
            let a = hide_checkins(ds, ratio, seed).unwrap();
            let b = hide_checkins(ds, ratio, seed).unwrap();
            prop_assert_eq!(a.checkins(), b.checkins());
        }
    }
}
