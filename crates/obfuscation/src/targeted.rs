//! A **targeted** hiding defense — the paper's future-work direction
//! ("design an obfuscation mechanism to effectively protect friendship").
//!
//! Random hiding wastes most of its budget on check-ins that carry no
//! friendship evidence. This mechanism spends the same budget on the
//! check-ins that are most *linkable*: visits that co-occur with other
//! users at the same POI within a small time window, weighted by how
//! unpopular (and therefore identifying) the place is — the same
//! location-entropy intuition the attacks exploit, turned around.

use std::collections::BTreeMap;

use rand::prelude::*;
use rand::rngs::StdRng;
use seeker_trace::{CheckIn, Dataset, PoiId, Result, TraceError};

/// Configuration of the targeted hiding defense.
#[derive(Debug, Clone)]
pub struct TargetedHidingConfig {
    /// Fraction of all check-ins to remove, in `[0, 1)`.
    pub budget: f64,
    /// Two check-ins at the same POI within this window count as a
    /// co-occurrence (linkability evidence).
    pub window_secs: i64,
    /// Tie-breaking seed (scores often tie on sparse data).
    pub seed: u64,
}

impl Default for TargetedHidingConfig {
    fn default() -> Self {
        TargetedHidingConfig { budget: 0.3, window_secs: 6 * 3_600, seed: 42 }
    }
}

/// Linkability score of every check-in: the popularity-discounted number of
/// co-occurrences with *other users* at the same POI within the window.
///
/// Exposed so defenses and diagnostics can inspect what would be hidden.
pub fn linkability_scores(ds: &Dataset, window_secs: i64) -> Vec<f64> {
    // Per-POI time-sorted event lists (index into the check-in array).
    let mut poi_events: BTreeMap<PoiId, Vec<(i64, u32, usize)>> = BTreeMap::new();
    for (idx, c) in ds.checkins().iter().enumerate() {
        poi_events.entry(c.poi).or_default().push((c.time.as_secs(), c.user.raw(), idx));
    }
    let mut scores = vec![0.0f64; ds.n_checkins()];
    for events in poi_events.values_mut() {
        events.sort_unstable();
        let visitors: std::collections::BTreeSet<u32> = events.iter().map(|&(_, u, _)| u).collect();
        let weight = 1.0 / (std::f64::consts::E + visitors.len() as f64).ln();
        for i in 0..events.len() {
            let (ti, ui, idx_i) = events[i];
            for &(tj, uj, idx_j) in events.iter().skip(i + 1) {
                if tj - ti > window_secs {
                    break;
                }
                if ui == uj {
                    continue;
                }
                scores[idx_i] += weight;
                scores[idx_j] += weight;
            }
        }
    }
    scores
}

/// Removes the `budget` fraction of check-ins with the highest linkability
/// scores (never a user's last check-in). Deterministic in the seed.
///
/// # Errors
///
/// Returns [`TraceError::Invalid`] if `budget` is outside `[0, 1)`.
pub fn targeted_hide(ds: &Dataset, cfg: &TargetedHidingConfig) -> Result<Dataset> {
    if !(0.0..1.0).contains(&cfg.budget) {
        return Err(TraceError::Invalid(format!("hiding budget {} outside [0, 1)", cfg.budget)));
    }
    let scores = linkability_scores(ds, cfg.window_secs);
    let mut order: Vec<usize> = (0..ds.n_checkins()).collect();
    // Random tie-break, then stable sort by descending score.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    order.shuffle(&mut rng);
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));

    let target_removals = ((ds.n_checkins() as f64) * cfg.budget).round() as usize;
    let mut remaining: Vec<usize> = ds.users().map(|u| ds.checkin_count(u)).collect();
    let mut keep = vec![true; ds.n_checkins()];
    let mut removed = 0usize;
    for idx in order {
        if removed >= target_removals {
            break;
        }
        let user = ds.checkins()[idx].user;
        if remaining[user.index()] <= 1 {
            continue;
        }
        keep[idx] = false;
        remaining[user.index()] -= 1;
        removed += 1;
    }
    let kept: Vec<CheckIn> =
        ds.checkins().iter().zip(keep.iter()).filter(|(_, &k)| k).map(|(&c, _)| c).collect();
    ds.with_checkins(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seeker_trace::synth::{generate, SyntheticConfig};
    use seeker_trace::{DatasetBuilder, GeoPoint, Timestamp};

    #[test]
    fn scores_reward_temporal_co_occurrence() {
        let mut b = DatasetBuilder::new("s");
        let p = b.add_poi(GeoPoint::new(0.0, 0.0), 1.0);
        let q = b.add_poi(GeoPoint::new(1.0, 1.0), 1.0);
        // Users 1 and 2 co-occur at p within the window; user 1's visit to q
        // is solitary.
        b.add_checkin(1, p, Timestamp::from_secs(0));
        b.add_checkin(1, q, Timestamp::from_secs(50_000));
        b.add_checkin(2, p, Timestamp::from_secs(600));
        b.add_checkin(2, q, Timestamp::from_secs(999_999));
        let ds = b.build().unwrap();
        let scores = linkability_scores(&ds, 3_600);
        // Find the co-occurring check-ins: both at poi p.
        for (i, c) in ds.checkins().iter().enumerate() {
            if c.poi == p {
                assert!(scores[i] > 0.0, "co-occurring check-in must score");
            } else {
                assert_eq!(scores[i], 0.0, "solitary check-in must not score");
            }
        }
    }

    #[test]
    fn targeted_hide_removes_linkable_checkins_first() {
        let ds = generate(&SyntheticConfig::small(131)).unwrap().dataset;
        let cfg = TargetedHidingConfig { budget: 0.3, ..Default::default() };
        let scores = linkability_scores(&ds, cfg.window_secs);
        let defended = targeted_hide(&ds, &cfg).unwrap();
        // Mean linkability of surviving check-ins must be lower than the
        // original mean (the defense removed the hottest ones).
        let orig_mean: f64 = scores.iter().sum::<f64>() / scores.len() as f64;
        let surviving: std::collections::BTreeSet<_> =
            defended.checkins().iter().map(|c| (c.user, c.poi, c.time)).collect();
        let kept_scores: Vec<f64> = ds
            .checkins()
            .iter()
            .zip(scores.iter())
            .filter(|(c, _)| surviving.contains(&(c.user, c.poi, c.time)))
            .map(|(_, &s)| s)
            .collect();
        let kept_mean: f64 = kept_scores.iter().sum::<f64>() / kept_scores.len() as f64;
        assert!(kept_mean < orig_mean, "kept {kept_mean} vs original {orig_mean}");
    }

    #[test]
    fn targeted_hide_respects_budget_and_guard() {
        let ds = generate(&SyntheticConfig::small(132)).unwrap().dataset;
        let cfg = TargetedHidingConfig { budget: 0.4, ..Default::default() };
        let defended = targeted_hide(&ds, &cfg).unwrap();
        let removed = ds.n_checkins() - defended.n_checkins();
        assert!(removed <= ((ds.n_checkins() as f64) * 0.4).round() as usize);
        for u in defended.users() {
            assert!(defended.checkin_count(u) >= 1);
        }
        assert_eq!(defended.n_links(), ds.n_links());
    }

    #[test]
    fn targeted_hide_is_deterministic() {
        let ds = generate(&SyntheticConfig::small(133)).unwrap().dataset;
        let cfg = TargetedHidingConfig::default();
        let a = targeted_hide(&ds, &cfg).unwrap();
        let b = targeted_hide(&ds, &cfg).unwrap();
        assert_eq!(a.checkins(), b.checkins());
    }

    #[test]
    fn rejects_bad_budget() {
        let ds = generate(&SyntheticConfig::small(134)).unwrap().dataset;
        let cfg = TargetedHidingConfig { budget: 1.0, ..Default::default() };
        assert!(targeted_hide(&ds, &cfg).is_err());
    }
}
