//! The atomics-ordering audit: every `Ordering::Relaxed` site in non-test
//! library code must carry an adjacent `// ordering:` comment justifying
//! why relaxed memory ordering is sufficient — the default posture is
//! `Acquire`/`Release` or stronger, which always pass.
//!
//! Relaxed atomics are the workspace's sharpest correctness edge: they are
//! almost always *right* here (counters, uniqueness tokens, lock-protected
//! hints) and the one case where they are wrong is invisible in review.
//! The audit makes the reasoning part of the site: `// ordering: <why
//! relaxed is enough>` on the same line or the contiguous comment block
//! above. The full `Ordering::*` inventory is also collected so
//! `--atomics` can print the workspace's memory-ordering surface at a
//! glance.
//!
//! Known blind spot (shared with the no-panic lexer rule): a site that
//! imports the variant directly (`use Ordering::Relaxed;` then bare
//! `Relaxed`) is not matched. The workspace convention is to write
//! `Ordering::Relaxed` in full, which the `undocumented-pub`-style review
//! culture upholds.

use crate::lexer::lex;
use crate::rules::{self, FileClass, Rule};
use crate::tokens::TokenStream;
use crate::walk::workspace_sources;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The memory-ordering variants (`std::sync::atomic::Ordering`).
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One `Ordering::<variant>` mention in non-test library code.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// Source file, relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line of the `Ordering::<variant>` token.
    pub line: usize,
    /// The variant name (`Relaxed`, `Acquire`, …).
    pub ordering: &'static str,
    /// Whether an adjacent `// ordering:` justification comment was found.
    pub justified: bool,
}

/// An unjustified-`Relaxed` violation.
#[derive(Debug, Clone)]
pub struct AtomicViolation {
    /// Source file, relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line of the offending site.
    pub line: usize,
}

impl fmt::Display for AtomicViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [atomic-ordering] `Ordering::Relaxed` without an adjacent \
             `// ordering:` justification — explain why relaxed is sufficient, use \
             Acquire/Release, or `lint:allow(atomic-ordering)` with a reason",
            self.file.display(),
            self.line
        )
    }
}

/// Collects every `Ordering::<variant>` site in non-test library code and
/// the unjustified-`Relaxed` violations among them. Sites are ordered by
/// file then line.
///
/// # Errors
///
/// Propagates I/O errors from source reads.
pub fn atomic_sites(root: &Path) -> io::Result<(Vec<AtomicSite>, Vec<AtomicViolation>)> {
    let sources = workspace_sources(root)?;
    let mut sites = Vec::new();
    let mut violations = Vec::new();
    for file in &sources {
        if !matches!(file.class, FileClass::Library | FileClass::LibraryRoot) {
            continue;
        }
        let source = fs::read_to_string(root.join(&file.path))?;
        collect_file(&file.path, &source, &mut sites, &mut violations);
    }
    sites.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok((sites, violations))
}

/// Scans one file's token stream for `Ordering::<variant>` mentions.
fn collect_file(
    rel_path: &Path,
    source: &str,
    sites: &mut Vec<AtomicSite>,
    violations: &mut Vec<AtomicViolation>,
) {
    let stream = TokenStream::new(lex(source));
    let test_lines = rules::test_region_lines(&stream);
    let allows = rules::collect_allows(&stream);
    let lines: Vec<&str> = source.lines().collect();
    for (i, t) in stream.code_iter() {
        if !t.is_ident("Ordering") || test_lines.contains(&t.line) {
            continue;
        }
        if !stream.code(i + 1).is_some_and(|u| u.is_punct("::")) {
            continue;
        }
        let Some(variant) = stream.code(i + 2) else { continue };
        let Some(&ordering) = ORDERINGS.iter().find(|&&o| variant.is_ident(o)) else {
            continue;
        };
        let justified = has_ordering_comment(&lines, t.line);
        sites.push(AtomicSite { file: rel_path.to_path_buf(), line: t.line, ordering, justified });
        let allowed = allows
            .iter()
            .any(|(l, r)| *r == Rule::AtomicOrdering && (*l == t.line || *l + 1 == t.line));
        if ordering == "Relaxed" && !justified && !allowed {
            violations.push(AtomicViolation { file: rel_path.to_path_buf(), line: t.line });
        }
    }
}

/// Looks for an `// ordering:` comment adjacent to `line` (1-based): a
/// trailing comment on the line itself, or anywhere in the contiguous run
/// of comment lines directly above it.
fn has_ordering_comment(lines: &[&str], line: usize) -> bool {
    let marks = |text: &str| text.contains("// ordering:");
    if lines.get(line - 1).is_some_and(|l| marks(l)) {
        return true;
    }
    let mut i = line - 1; // 0-based index of the line above
    while i > 0 {
        let above = lines[i - 1].trim_start();
        if !above.starts_with("//") {
            return false;
        }
        if marks(above) {
            return true;
        }
        i -= 1;
    }
    false
}

/// Renders the inventory as a per-file report (for `--atomics`).
#[must_use]
pub fn render_inventory(sites: &[AtomicSite]) -> String {
    let mut out = String::from("atomics inventory (non-test library code):\n");
    for s in sites {
        out.push_str(&format!(
            "  {}:{}: Ordering::{}{}\n",
            s.file.display(),
            s.line,
            s.ordering,
            if s.ordering == "Relaxed" && s.justified { " (justified)" } else { "" }
        ));
    }
    out.push_str(&format!("  {} site(s) total\n", sites.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace(lib: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!(
            "seeker-lint-atomics-{}-{}",
            std::process::id(),
            lib.len()
        ));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/alpha/src")).expect("mkdir");
        fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n")
            .expect("write");
        fs::write(
            root.join("crates/alpha/Cargo.toml"),
            "[package]\nname = \"alpha\"\nversion = \"0.0.0\"\n",
        )
        .expect("write");
        fs::write(root.join("crates/alpha/src/lib.rs"), lib).expect("write");
        root
    }

    const HEADER: &str = "//! A.\n#![deny(missing_docs)]\nuse std::sync::atomic::{AtomicU64, Ordering};\nstatic N: AtomicU64 = AtomicU64::new(0);\n";

    #[test]
    fn bare_relaxed_is_a_violation() {
        let root = workspace(&format!(
            "{HEADER}/// Bump.\npub fn bump() {{ N.fetch_add(1, Ordering::Relaxed); }}\n"
        ));
        let (sites, violations) = atomic_sites(&root).expect("scan");
        assert_eq!(sites.len(), 1);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].to_string().contains("atomic-ordering"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn justified_relaxed_passes() {
        let root = workspace(&format!(
            "{HEADER}/// Bump.\npub fn bump() {{\n    // ordering: monotonic counter, no ordering dependency.\n    N.fetch_add(1, Ordering::Relaxed);\n}}\n"
        ));
        let (sites, violations) = atomic_sites(&root).expect("scan");
        assert_eq!(sites.len(), 1);
        assert!(sites[0].justified);
        assert!(violations.is_empty(), "{violations:?}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn same_line_justification_passes() {
        let root = workspace(&format!(
            "{HEADER}/// Bump.\npub fn bump() {{ N.fetch_add(1, Ordering::Relaxed); // ordering: counter\n}}\n"
        ));
        let (_, violations) = atomic_sites(&root).expect("scan");
        assert!(violations.is_empty(), "{violations:?}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stronger_orderings_pass_without_comment() {
        let root = workspace(&format!(
            "{HEADER}/// Get.\npub fn get() -> u64 {{ N.load(Ordering::Acquire) }}\n/// Set.\npub fn set(v: u64) {{ N.store(v, Ordering::SeqCst); }}\n"
        ));
        let (sites, violations) = atomic_sites(&root).expect("scan");
        assert_eq!(sites.len(), 2);
        assert!(violations.is_empty(), "{violations:?}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn test_region_relaxed_is_exempt() {
        let root = workspace(&format!(
            "{HEADER}#[cfg(test)]\nmod tests {{\n    #[test]\n    fn t() {{ super::N.load(super::Ordering::Relaxed); }}\n}}\n"
        ));
        let (sites, violations) = atomic_sites(&root).expect("scan");
        assert!(sites.is_empty());
        assert!(violations.is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn allow_comment_escapes_the_gate_but_stays_in_inventory() {
        let root = workspace(&format!(
            "{HEADER}/// Bump.\npub fn bump() {{\n    // lint:allow(atomic-ordering) -- measured: fence cost dominates here\n    N.fetch_add(1, Ordering::Relaxed);\n}}\n"
        ));
        let (sites, violations) = atomic_sites(&root).expect("scan");
        assert_eq!(sites.len(), 1);
        assert!(!sites[0].justified);
        assert!(violations.is_empty(), "{violations:?}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn inventory_renders_every_site() {
        let root = workspace(&format!(
            "{HEADER}/// Get.\npub fn get() -> u64 {{ N.load(Ordering::Acquire) }}\n"
        ));
        let (sites, _) = atomic_sites(&root).expect("scan");
        let report = render_inventory(&sites);
        assert!(report.contains("Ordering::Acquire"));
        assert!(report.contains("1 site(s) total"));
        let _ = fs::remove_dir_all(&root);
    }
}
