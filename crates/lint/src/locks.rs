//! Lock-order and condvar-protocol analysis (call-graph pass).
//!
//! The workspace has a small, fixed set of `Mutex`es (the `seeker-par`
//! pool state and the `seeker-obs` registries), which makes a *complete*
//! acquisition-order graph tractable: the pass indexes every lock
//! acquisition in non-test library code, propagates held-lock sets along
//! the workspace call graph, and flags
//!
//! 1. **cycles** in the lock-acquisition-order graph (including
//!    self-loops: re-acquiring a non-reentrant `std::sync::Mutex` on the
//!    same thread is a guaranteed deadlock);
//! 2. **`Condvar::wait`/`wait_while` outside a predicate loop** — a bare
//!    `wait` is vulnerable to spurious wakeups and lost notifications;
//! 3. **locks held across `par_map`-family dispatches** — a caller that
//!    enters the pool while holding a lock serializes every worker behind
//!    it at best, and deadlocks at worst if a worker needs the same lock.
//!
//! ## Model
//!
//! A lock's identity is `(crate, name)` where `name` is the receiver or
//! argument tail identifier at the acquisition site (`self.state.lock()`
//! → `state`, `lock_ignore_poison(counter_registry())` →
//! `counter_registry`). Guard lifetimes are tracked linearly: a let-bound
//! or reassigned guard is held until the first `drop(<var>)` or the close
//! of its enclosing block, an unbound temporary until the end of its
//! statement. Held sets at call sites follow the call graph through
//! `Resolved` *and* `Ambiguous` edges (conservative), using each callee's
//! transitive acquire-closure.
//!
//! Deliberate over-approximations (can only add edges, never hide one):
//! the whole acquire→release *line* range counts as held, and binding a
//! guard's derived value (`let x = lock(m).take()`) extends the hold to
//! the block close. Known blind spots: `RwLock` read/write guards are not
//! indexed, IO locks (`stderr.lock()`) are deliberately excluded, and
//! macro-expanded acquisitions (`counter!`) are invisible — see
//! `docs/LINTING.md`. Escape hatch: `// lint:allow(lock-order)` on the
//! acquisition (or dispatch) line removes that site from the graph.

use crate::callgraph::{self, CallGraph};
use crate::lexer::lex;
use crate::rules::{self, FileClass, Rule};
use crate::syntax::{parse_stream, Item, ItemKind};
use crate::tokens::{TokenKind, TokenStream};
use crate::walk::{workspace_crates, workspace_sources};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lock-free `lock()`-named receivers that are IO handle locks, not
/// mutexes.
const IO_RECEIVERS: &[&str] = &["stderr", "stdout", "stdin"];

/// Free functions that acquire the mutex passed as their first argument.
const HELPER_FNS: &[&str] = &["lock", "lock_ignore_poison"];

/// Methods that acquire a fixed, known lock of their receiver type.
const HELPER_METHODS: &[(&str, &str)] = &[("events_lock", "events")];

/// Pool dispatch entry points a held lock must never cross.
const PAR_FAMILY: &[&str] =
    &["par_map", "par_map_cost", "par_map_indexed", "par_map_indexed_cost", "par_map_chunked"];

/// One directed acquired-before edge of the lock-order graph.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// The lock already held.
    pub from: String,
    /// The lock acquired under it.
    pub to: String,
    /// Example site establishing the edge (file, 1-based line).
    pub file: PathBuf,
    /// 1-based line of the example site.
    pub line: usize,
}

/// A finding of the lock/condvar analysis.
#[derive(Debug, Clone)]
pub enum LockFinding {
    /// A cycle in the acquisition-order graph.
    Cycle {
        /// The locks on the cycle, sorted.
        locks: Vec<String>,
        /// An example edge site inside the cycle.
        file: PathBuf,
        /// 1-based line of the example site.
        line: usize,
    },
    /// A `Condvar::wait`/`wait_while` call outside any loop.
    WaitOutsideLoop {
        /// Source file.
        file: PathBuf,
        /// 1-based line of the wait call.
        line: usize,
    },
    /// A lock held across a `par_map`-family dispatch.
    HeldAcrossPar {
        /// The held lock.
        lock: String,
        /// The dispatch callee as written.
        callee: String,
        /// Source file.
        file: PathBuf,
        /// 1-based line of the dispatch.
        line: usize,
    },
}

impl fmt::Display for LockFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockFinding::Cycle { locks, file, line } => write!(
                f,
                "{}:{}: [lock-order] acquisition-order cycle between {{{}}} — two threads \
                 interleaving these orders deadlock; impose one global order",
                file.display(),
                line,
                locks.join(", ")
            ),
            LockFinding::WaitOutsideLoop { file, line } => write!(
                f,
                "{}:{}: [lock-order] `Condvar::wait` outside a predicate loop — spurious \
                 wakeups make a bare wait incorrect; use `while !cond {{ wait }}` or `wait_while`",
                file.display(),
                line
            ),
            LockFinding::HeldAcrossPar { lock, callee, file, line } => write!(
                f,
                "{}:{}: [lock-order] lock `{lock}` held across `{callee}` — release it before \
                 dispatching to the pool",
                file.display(),
                line
            ),
        }
    }
}

/// The lock-order analysis result: the graph plus the findings.
#[derive(Debug, Clone, Default)]
pub struct LockOrderReport {
    /// Every lock acquired anywhere in non-test library code, sorted.
    pub locks: Vec<String>,
    /// The acquired-before edges, deduplicated, sorted by (from, to).
    pub edges: Vec<LockEdge>,
    /// Cycles, bare waits, and held-across-dispatch findings.
    pub findings: Vec<LockFinding>,
}

/// One acquisition inside a function body.
struct Acquire {
    /// Index into the lock name table.
    lock: usize,
    /// Code-token index of the acquisition.
    idx: usize,
    /// 1-based source line of the acquisition.
    line: usize,
    /// Code-token index one past the release point.
    release_idx: usize,
    /// 1-based source line of the release point.
    release_line: usize,
    /// Whether `lint:allow(lock-order)` sanctions the site.
    allowed: bool,
}

/// Runs the lock-order and condvar-protocol analysis over the workspace
/// rooted at `root`, reusing an already-built call `graph`.
///
/// # Errors
///
/// Propagates I/O errors from source reads.
pub fn lock_order(root: &Path, graph: &CallGraph) -> io::Result<LockOrderReport> {
    let crates = workspace_crates(root)?;
    let sources = workspace_sources(root)?;

    let mut lock_names: Vec<String> = Vec::new();
    let intern = |name: String, names: &mut Vec<String>| -> usize {
        names.iter().position(|n| n == &name).unwrap_or_else(|| {
            names.push(name);
            names.len() - 1
        })
    };

    // Per-call-graph-node direct acquire sets, and per-call-site held sets.
    let mut direct: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); graph.nodes.len()];
    // (caller node, call index within the node, held locks).
    let mut held_at: Vec<(usize, usize, BTreeSet<usize>)> = Vec::new();
    let mut edge_sites: BTreeMap<(usize, usize), (PathBuf, usize)> = BTreeMap::new();
    let mut findings: Vec<LockFinding> = Vec::new();

    for file in &sources {
        if !matches!(file.class, FileClass::Library | FileClass::LibraryRoot) {
            continue;
        }
        let Some(info) = crates.iter().find(|c| file.path.starts_with(c.dir.join("src"))) else {
            continue;
        };
        let source = fs::read_to_string(root.join(&file.path))?;
        let stream = TokenStream::new(lex(&source));
        let tree = parse_stream(&stream, source.len());
        let test_lines = rules::test_region_lines(&stream);
        let allows = rules::collect_allows(&stream);
        let allowed = |line: usize| {
            allows.iter().any(|(l, r)| *r == Rule::LockOrder && (*l == line || *l + 1 == line))
        };

        let mut fns: Vec<&Item> = Vec::new();
        collect_fns(&tree.items, &mut fns);
        for item in fns {
            let Some((bs, be)) = item.body_code else { continue };
            if test_lines.contains(&item.line) {
                continue;
            }
            // Lock-helper bodies acquire through their parameter; indexing
            // them would invent a junk lock named after the parameter.
            if HELPER_FNS.contains(&item.name.as_str())
                || HELPER_METHODS.iter().any(|(m, _)| *m == item.name)
            {
                continue;
            }
            let acquires = scan_acquires(&stream, bs, be, &info.name, &mut |name| {
                intern(name, &mut lock_names)
            });
            let acquires: Vec<Acquire> = acquires
                .into_iter()
                .filter(|a| !test_lines.contains(&a.line))
                .map(|mut a| {
                    a.allowed = allowed(a.line);
                    a
                })
                .collect();

            // (2) Condvar waits must sit inside a loop.
            let loops = callgraph::loop_ranges(&stream, bs, be);
            for (idx, line) in condvar_waits(&stream, bs, be) {
                if test_lines.contains(&line) || allowed(line) {
                    continue;
                }
                if !loops.iter().any(|&(lo, hi)| lo <= idx && idx < hi) {
                    findings.push(LockFinding::WaitOutsideLoop { file: file.path.clone(), line });
                }
            }

            // Intra-body acquired-before edges: anything acquired while a
            // prior acquire is still held.
            for a in acquires.iter().filter(|a| !a.allowed) {
                for b in &acquires {
                    if b.idx > a.idx && b.idx < a.release_idx && !b.allowed {
                        edge_sites
                            .entry((a.lock, b.lock))
                            .or_insert_with(|| (file.path.clone(), b.line));
                    }
                }
            }

            // Map this body to its call-graph node for the
            // inter-procedural part.
            let Some(node_idx) =
                graph.nodes.iter().position(|n| n.file == file.path && n.line == item.line)
            else {
                continue;
            };
            for a in &acquires {
                if !a.allowed {
                    direct[node_idx].insert(a.lock);
                }
            }
            for (call_idx, edge) in graph.nodes[node_idx].calls.iter().enumerate() {
                let held: BTreeSet<usize> = acquires
                    .iter()
                    .filter(|a| !a.allowed && a.line <= edge.line && edge.line <= a.release_line)
                    .map(|a| a.lock)
                    .collect();
                if held.is_empty() || allowed(edge.line) {
                    continue;
                }
                // (3) Dispatch-under-lock check works on the callee text,
                // so it also catches external `seeker_par::*` calls.
                let tail = edge.callee.rsplit("::").next().unwrap_or(&edge.callee);
                if PAR_FAMILY.contains(&tail) {
                    for &l in &held {
                        findings.push(LockFinding::HeldAcrossPar {
                            lock: lock_names[l].clone(),
                            callee: edge.callee.clone(),
                            file: file.path.clone(),
                            line: edge.line,
                        });
                    }
                }
                held_at.push((node_idx, call_idx, held));
            }
        }
    }

    // Inter-procedural edges: held locks → everything the callee may
    // transitively acquire.
    let adjacency: Vec<Vec<usize>> = graph
        .nodes
        .iter()
        .map(|n| n.calls.iter().flat_map(|e| CallGraph::targets_of(e).to_vec()).collect())
        .collect();
    let closure = acquire_closure(&direct, &adjacency);
    for (node_idx, call_idx, held) in &held_at {
        let edge = &graph.nodes[*node_idx].calls[*call_idx];
        for &target in CallGraph::targets_of(edge) {
            for &to in &closure[target] {
                for &from in held {
                    edge_sites
                        .entry((from, to))
                        .or_insert_with(|| (graph.nodes[*node_idx].file.clone(), edge.line));
                }
            }
        }
    }

    // (1) Cycle detection over the lock graph via transitive closure.
    let n = lock_names.len();
    let mut reach = vec![vec![false; n]; n];
    for &(from, to) in edge_sites.keys() {
        reach[from][to] = true;
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                reach[i][j] = reach[i][j] || (reach[i][k] && reach[k][j]);
            }
        }
    }
    let mut in_cycle_component: Vec<Option<usize>> = vec![None; n];
    let mut component_count = 0usize;
    for i in 0..n {
        if reach[i][i] && in_cycle_component[i].is_none() {
            for (j, slot) in in_cycle_component.iter_mut().enumerate() {
                if reach[i][j] && reach[j][i] {
                    *slot = Some(component_count);
                }
            }
            component_count += 1;
        }
    }
    for c in 0..component_count {
        let locks: Vec<String> = (0..n)
            .filter(|&i| in_cycle_component[i] == Some(c))
            .map(|i| lock_names[i].clone())
            .collect();
        let (file, line) = edge_sites
            .iter()
            .find(|((from, to), _)| {
                in_cycle_component[*from] == Some(c) && in_cycle_component[*to] == Some(c)
            })
            .map(|(_, site)| site.clone())
            .unwrap_or_default();
        findings.push(LockFinding::Cycle { locks, file, line });
    }

    let mut locks = lock_names.clone();
    locks.sort();
    let mut edges: Vec<LockEdge> = edge_sites
        .iter()
        .map(|(&(from, to), (file, line))| LockEdge {
            from: lock_names[from].clone(),
            to: lock_names[to].clone(),
            file: file.clone(),
            line: *line,
        })
        .collect();
    edges.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
    findings.sort_by_key(|f| match f {
        LockFinding::Cycle { line, .. }
        | LockFinding::WaitOutsideLoop { line, .. }
        | LockFinding::HeldAcrossPar { line, .. } => *line,
    });
    Ok(LockOrderReport { locks, edges, findings })
}

/// The transitive acquire-closure: `closure[i]` is everything function `i`
/// may acquire directly or through any chain of calls (`adjacency[i]` =
/// callee indices, `Resolved` and `Ambiguous` alike).
///
/// Pure and monotone in both arguments: inserting a call edge or a direct
/// acquisition can only grow the result (property-tested below).
#[must_use]
pub fn acquire_closure(
    direct: &[BTreeSet<usize>],
    adjacency: &[Vec<usize>],
) -> Vec<BTreeSet<usize>> {
    let mut closure = direct.to_vec();
    loop {
        let mut changed = false;
        for i in 0..closure.len() {
            for &callee in adjacency.get(i).map_or(&[][..], Vec::as_slice) {
                if callee == i || callee >= closure.len() {
                    continue;
                }
                let add: Vec<usize> =
                    closure[callee].iter().copied().filter(|l| !closure[i].contains(l)).collect();
                if !add.is_empty() {
                    closure[i].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            return closure;
        }
    }
}

/// Collects every `fn` item of the tree (any nesting) into `out`.
fn collect_fns<'a>(items: &'a [Item], out: &mut Vec<&'a Item>) {
    for item in items {
        if item.kind == ItemKind::Fn {
            out.push(item);
        }
        collect_fns(&item.children, out);
    }
}

/// Scans `[bs, be)` for lock acquisitions.
fn scan_acquires(
    stream: &TokenStream<'_>,
    bs: usize,
    be: usize,
    crate_name: &str,
    intern: &mut impl FnMut(String) -> usize,
) -> Vec<Acquire> {
    let mut acquires = Vec::new();
    for i in bs..be {
        let Some(t) = stream.code(i) else { break };
        let lock_name = if t.is_punct(".") {
            let Some(m) = stream.code(i + 1) else { continue };
            if !stream.code(i + 2).is_some_and(|u| u.is_punct("(")) {
                continue;
            }
            if m.is_ident("lock") && stream.code(i + 3).is_some_and(|u| u.is_punct(")")) {
                match receiver_tail(stream, i) {
                    Some(name) if !IO_RECEIVERS.contains(&name) => name.to_string(),
                    _ => continue,
                }
            } else if let Some((_, fixed)) =
                HELPER_METHODS.iter().find(|(h, _)| m.kind == TokenKind::Ident && m.text == *h)
            {
                (*fixed).to_string()
            } else {
                continue;
            }
        } else if t.kind == TokenKind::Ident
            && HELPER_FNS.contains(&t.text)
            && stream.code(i + 1).is_some_and(|u| u.is_punct("("))
            && !(i > 0 && stream.code(i - 1).is_some_and(|u| u.is_punct(".") || u.is_ident("fn")))
        {
            match first_arg_tail(stream, i + 1, be) {
                Some(name) => name,
                None => continue,
            }
        } else {
            continue;
        };
        let lock = intern(format!("{crate_name}::{lock_name}"));
        let (release_idx, release_line) = release_point(stream, bs, be, i);
        acquires.push(Acquire {
            lock,
            idx: i,
            line: t.line,
            release_idx,
            release_line,
            allowed: false,
        });
    }
    acquires
}

/// The identifier directly before the `.` at code index `dot` (skipping one
/// balanced `(...)` call suffix, so `test_mutex().lock()` names
/// `test_mutex`).
fn receiver_tail<'a>(stream: &TokenStream<'a>, dot: usize) -> Option<&'a str> {
    let mut j = dot.checked_sub(1)?;
    if stream.code(j).is_some_and(|u| u.is_punct(")")) {
        let mut depth = 1isize;
        while depth > 0 {
            j = j.checked_sub(1)?;
            match stream.code(j).map_or("", |u| u.text) {
                ")" => depth += 1,
                "(" => depth -= 1,
                _ => {}
            }
        }
        j = j.checked_sub(1)?;
    }
    let t = stream.code(j)?;
    (t.kind == TokenKind::Ident).then_some(t.text)
}

/// The last identifier of a helper call's first argument (`lock(&self.state)`
/// → `state`, `lock_ignore_poison(counter_registry())` → `counter_registry`).
fn first_arg_tail(stream: &TokenStream<'_>, open: usize, be: usize) -> Option<String> {
    let mut depth = 0isize;
    let mut last_ident: Option<&str> = None;
    for j in open..be {
        let t = stream.code(j)?;
        match t.text {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "," if depth == 1 => break,
            _ => {
                // Depth 1 only: identifiers inside nested groups
                // (`lock(&slots[c])`) are index/argument expressions, not
                // the lock's name.
                if depth == 1 && t.kind == TokenKind::Ident && t.text != "self" {
                    last_ident = Some(t.text);
                }
            }
        }
    }
    last_ident.map(str::to_string)
}

/// Where the guard acquired at code index `i` is released: a let-bound or
/// reassigned guard at the first `drop(<var>)` after the acquisition or the
/// close of the enclosing block, an unbound temporary at the end of its
/// statement. Returns `(one past the release token, its line)`.
fn release_point(stream: &TokenStream<'_>, bs: usize, be: usize, i: usize) -> (usize, usize) {
    let line_of = |idx: usize| stream.code(idx.min(be.saturating_sub(1))).map_or(0, |t| t.line);
    // Find the statement start: the token after the previous `;`, `{` or
    // `}` (any depth change ends the previous statement for this purpose).
    let mut start = i;
    while start > bs {
        if stream.code(start - 1).is_some_and(|t| matches!(t.text, ";" | "{" | "}")) {
            break;
        }
        start -= 1;
    }
    // `let [mut] IDENT =` or `IDENT =` at the statement start binds the
    // guard (or a value derived from it — held-over-approximation).
    let mut s = start;
    if stream.code(s).is_some_and(|t| t.is_ident("let")) {
        s += 1;
    }
    if stream.code(s).is_some_and(|t| t.is_ident("mut")) {
        s += 1;
    }
    let bound = match (stream.code(s), stream.code(s + 1)) {
        (Some(var), Some(eq)) if var.kind == TokenKind::Ident && eq.is_punct("=") && s < i => {
            Some(var.text)
        }
        _ => None,
    };
    if let Some(var) = bound {
        // Released at `drop(var)` or at the close of the enclosing block.
        let mut depth = 0isize;
        for j in i..be {
            let Some(t) = stream.code(j) else { break };
            match t.text {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return (j, line_of(j));
                    }
                }
                "drop"
                    if t.kind == TokenKind::Ident
                        && stream.code(j + 1).is_some_and(|u| u.is_punct("("))
                        && stream.code(j + 2).is_some_and(|u| u.is_ident(var))
                        && stream.code(j + 3).is_some_and(|u| u.is_punct(")")) =>
                {
                    return (j + 4, line_of(j));
                }
                _ => {}
            }
        }
        (be, line_of(be))
    } else {
        // Temporary: dropped at the end of the statement (conservatively,
        // the next `;` or same-depth `,`).
        let mut depth = 0isize;
        for j in i..be {
            let Some(t) = stream.code(j) else { break };
            match t.text {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return (j, line_of(j));
                    }
                }
                ";" if depth == 0 => return (j, line_of(j)),
                "," if depth == 0 => return (j, line_of(j)),
                _ => {}
            }
        }
        (be, line_of(be))
    }
}

/// `(code index, line)` of every `.wait(`/`.wait_while(` call in `[bs, be)`.
fn condvar_waits(stream: &TokenStream<'_>, bs: usize, be: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in bs..be {
        let Some(t) = stream.code(i) else { break };
        if t.is_punct(".")
            && stream.code(i + 1).is_some_and(|u| u.is_ident("wait") || u.is_ident("wait_while"))
            && stream.code(i + 2).is_some_and(|u| u.is_punct("("))
        {
            out.push((i, t.line));
        }
    }
    out
}

/// Renders the lock-order graph and findings (for `--lock-order`).
#[must_use]
pub fn render_lock_graph(report: &LockOrderReport) -> String {
    let mut out = String::from("lock-order graph (non-test library code):\n");
    out.push_str(&format!("  locks ({}):\n", report.locks.len()));
    for l in &report.locks {
        out.push_str(&format!("    {l}\n"));
    }
    if report.edges.is_empty() {
        out.push_str("  acquired-before edges: (none)\n");
    } else {
        out.push_str(&format!("  acquired-before edges ({}):\n", report.edges.len()));
        for e in &report.edges {
            out.push_str(&format!(
                "    {} -> {}  [{}:{}]\n",
                e.from,
                e.to,
                e.file.display(),
                e.line
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build_call_graph;
    use proptest::prelude::*;

    fn workspace(lib: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!(
            "seeker-lint-locks-{}-{}",
            std::process::id(),
            lib.len()
        ));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/alpha/src")).expect("mkdir");
        fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n")
            .expect("write");
        fs::write(
            root.join("crates/alpha/Cargo.toml"),
            "[package]\nname = \"alpha\"\nversion = \"0.0.0\"\n",
        )
        .expect("write");
        fs::write(root.join("crates/alpha/src/lib.rs"), lib).expect("write");
        root
    }

    fn run(lib: &str) -> LockOrderReport {
        let root = workspace(lib);
        let graph = build_call_graph(&root).expect("call graph");
        let report = lock_order(&root, &graph).expect("lock order");
        let _ = fs::remove_dir_all(&root);
        report
    }

    const HEADER: &str = "//! A.\n#![deny(missing_docs)]\nuse std::sync::{Condvar, Mutex};\nstatic A: Mutex<u32> = Mutex::new(0);\nstatic B: Mutex<u32> = Mutex::new(0);\n";

    #[test]
    fn two_lock_cycle_is_detected() {
        let report = run(&format!(
            "{HEADER}/// ab.\npub fn ab() {{\n    let a = A.lock().expect(\"a\");\n    let b = B.lock().expect(\"b\");\n    drop(b);\n    drop(a);\n}}\n/// ba.\npub fn ba() {{\n    let b = B.lock().expect(\"b\");\n    let a = A.lock().expect(\"a\");\n    drop(a);\n    drop(b);\n}}\n"
        ));
        assert_eq!(report.locks, vec!["alpha::A", "alpha::B"]);
        assert_eq!(report.edges.len(), 2, "{report:?}");
        assert!(
            matches!(&report.findings[..], [LockFinding::Cycle { locks, .. }] if locks == &["alpha::A", "alpha::B"]),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn consistent_order_has_edges_but_no_cycle() {
        let report = run(&format!(
            "{HEADER}/// ab.\npub fn ab() {{\n    let a = A.lock().expect(\"a\");\n    let b = B.lock().expect(\"b\");\n    drop(b);\n    drop(a);\n}}\n/// ab2.\npub fn ab2() {{\n    let a = A.lock().expect(\"a\");\n    let b = B.lock().expect(\"b\");\n    drop(b);\n    drop(a);\n}}\n"
        ));
        assert_eq!(report.edges.len(), 1);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn drop_releases_the_guard_before_the_next_acquire() {
        // A released via drop() before B is taken: no edge, no cycle even
        // with the reverse order elsewhere.
        let report = run(&format!(
            "{HEADER}/// ab.\npub fn ab() {{\n    let a = A.lock().expect(\"a\");\n    drop(a);\n    let b = B.lock().expect(\"b\");\n    drop(b);\n}}\n/// ba.\npub fn ba() {{\n    let b = B.lock().expect(\"b\");\n    drop(b);\n    let a = A.lock().expect(\"a\");\n    drop(a);\n}}\n"
        ));
        assert!(report.edges.is_empty(), "{:?}", report.edges);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn interprocedural_cycle_through_the_call_graph() {
        let report = run(&format!(
            "{HEADER}/// outer.\npub fn outer() {{\n    let a = A.lock().expect(\"a\");\n    inner();\n    drop(a);\n}}\n/// inner.\npub fn inner() {{\n    let b = B.lock().expect(\"b\");\n    drop(b);\n}}\n/// other.\npub fn other() {{\n    let b = B.lock().expect(\"b\");\n    leaf();\n    drop(b);\n}}\n/// leaf.\npub fn leaf() {{\n    let a = A.lock().expect(\"a\");\n    drop(a);\n}}\n"
        ));
        assert!(
            report.findings.iter().any(|f| matches!(f, LockFinding::Cycle { .. })),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn wait_outside_a_loop_is_flagged_and_predicate_loop_passes() {
        let report = run(&format!(
            "{HEADER}static CV: Condvar = Condvar::new();\n/// bad.\npub fn bad() {{\n    let g = A.lock().expect(\"a\");\n    let _g = CV.wait(g).expect(\"wait\");\n}}\n/// good.\npub fn good() {{\n    let mut g = A.lock().expect(\"a\");\n    while *g == 0 {{\n        g = CV.wait(g).expect(\"wait\");\n    }}\n    drop(g);\n}}\n"
        ));
        let waits: Vec<usize> = report
            .findings
            .iter()
            .filter_map(|f| match f {
                LockFinding::WaitOutsideLoop { line, .. } => Some(*line),
                _ => None,
            })
            .collect();
        assert_eq!(waits.len(), 1, "{:?}", report.findings);
    }

    #[test]
    fn lock_held_across_par_map_is_flagged() {
        let report = run(&format!(
            "{HEADER}/// held.\npub fn held(items: &[u32]) -> Vec<u32> {{\n    let g = A.lock().expect(\"a\");\n    let out = seeker_par::par_map(items, |x| *x + *g);\n    drop(g);\n    out\n}}\n"
        ));
        assert!(
            matches!(&report.findings[..], [LockFinding::HeldAcrossPar { lock, .. }] if lock == "alpha::A"),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn allow_comment_removes_the_site_from_the_graph() {
        let report = run(&format!(
            "{HEADER}/// ab.\npub fn ab() {{\n    let a = A.lock().expect(\"a\");\n    // lint:allow(lock-order) -- init-order proven by OnceLock\n    let b = B.lock().expect(\"b\");\n    drop(b);\n    drop(a);\n}}\n/// ba.\npub fn ba() {{\n    let b = B.lock().expect(\"b\");\n    let a = A.lock().expect(\"a\");\n    drop(a);\n    drop(b);\n}}\n"
        ));
        assert_eq!(report.edges.len(), 1, "{:?}", report.edges);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn io_lock_receivers_are_not_indexed() {
        let report = run(&format!(
            "{HEADER}/// w.\npub fn w() {{\n    let stderr = std::io::stderr();\n    let _h = stderr.lock();\n}}\n"
        ));
        assert!(report.locks.is_empty(), "{:?}", report.locks);
    }

    #[test]
    fn helper_fn_acquisitions_are_indexed_by_argument() {
        let report = run(&format!(
            "{HEADER}/// Registry-style helper call sites name the lock by the\n/// argument tail.\npub fn bump() {{\n    let mut reg = lock_ignore_poison(registry());\n    *reg += 1;\n}}\n/// The registry.\nfn registry() -> &'static Mutex<u32> {{\n    &A\n}}\n"
        ));
        assert_eq!(report.locks, vec!["alpha::registry"]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Inserting one call-graph edge can only grow every function's
        /// acquire-closure — the fixpoint is monotone, so the conservative
        /// analysis can never lose a held-lock fact as the graph grows.
        #[test]
        fn acquire_closure_is_monotone_under_edge_insertion(
            n in 1usize..8,
            locks in proptest::collection::vec(0usize..6, 0..16),
            lock_owner in proptest::collection::vec(0usize..8, 0..16),
            edge_from in proptest::collection::vec(0usize..8, 0..12),
            edge_to in proptest::collection::vec(0usize..8, 0..12),
            extra_from in 0usize..8,
            extra_to in 0usize..8,
        ) {
            let mut direct = vec![BTreeSet::new(); n];
            for (l, o) in locks.iter().zip(&lock_owner) {
                direct[o % n].insert(*l);
            }
            let mut adjacency = vec![Vec::new(); n];
            for (f, t) in edge_from.iter().zip(&edge_to) {
                adjacency[f % n].push(t % n);
            }
            let before = acquire_closure(&direct, &adjacency);
            adjacency[extra_from % n].push(extra_to % n);
            let after = acquire_closure(&direct, &adjacency);
            for i in 0..n {
                prop_assert!(
                    before[i].is_subset(&after[i]),
                    "closure shrank at node {} after adding an edge",
                    i
                );
            }
        }
    }
}
