//! A hand-rolled, std-only item-tree parser on top of the lossless token
//! stream from [`crate::lexer`].
//!
//! The parser brace-matches the token stream of one source file into a tree
//! of spanned [`Item`]s — `mod`, `fn`, `impl`, `trait`, `struct`, `enum`,
//! `use`, and the rest — with nesting, visibility, and `#[cfg(test)]`
//! attribution. It is *not* a full Rust parser: it recovers the item
//! skeleton (who contains whom, where bodies start and end, what is public)
//! that the call-graph ([`crate::callgraph`]) and the semantic passes
//! ([`crate::panics`], [`crate::hotpath`]) need, and nothing more.
//!
//! ## Lossless invariant
//!
//! Every top-level item's byte span starts exactly where the previous
//! item's span ended (leading whitespace, doc comments and attributes are
//! part of the item they precede), the first span starts at byte 0, and the
//! bytes after the last item form the [`ItemTree::trailing_start`] tail.
//! Concatenating the item span texts plus the trailing tail reproduces the
//! file byte-for-byte — pinned by `tests/syntax_props.rs` over random
//! snippet assemblies and over every source file of the real workspace.
//! The same chaining applies one level down inside each braced body.
//!
//! The parser never fails: unrecognised constructs become
//! [`ItemKind::Other`] items and malformed input degrades to coarser spans,
//! but progress and the tiling invariant hold for arbitrary byte soup.

use crate::lexer::lex;
use crate::tokens::{TokenKind, TokenStream};

/// The syntactic class of an [`Item`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name;` or `mod name { … }` (the braced form has children).
    Mod,
    /// A function, free or associated (`fn`, `pub fn`, `const fn`, …).
    Fn,
    /// A `struct` definition (unit, tuple or braced).
    Struct,
    /// An `enum` definition.
    Enum,
    /// A `union` definition.
    Union,
    /// A `trait` definition; default-method children are parsed.
    Trait,
    /// An `impl` block; associated-`fn` children are parsed.
    Impl,
    /// A `use` declaration; its flattened imports are in [`Item::imports`].
    Use,
    /// A `type` alias.
    TypeAlias,
    /// A `const` item.
    Const,
    /// A `static` item.
    Static,
    /// A `macro_rules!` or 2018 `macro` definition.
    MacroDef,
    /// An item-position macro invocation (`foo! { … }`).
    MacroInvocation,
    /// `extern crate name;`.
    ExternCrate,
    /// Anything the parser does not model (foreign `extern` blocks,
    /// stray tokens); kept so spans still tile the file.
    Other,
}

/// Item visibility, as far as the passes care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// `pub`: part of the crate's public API.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)`: restricted.
    Restricted,
    /// No visibility keyword.
    Private,
}

/// One parsed item with its exact byte span and (for containers) children.
#[derive(Debug, Clone)]
pub struct Item {
    /// The syntactic class.
    pub kind: ItemKind,
    /// The item's name: the `fn`/`struct`/`mod`/… identifier, the
    /// self-type name for `impl` blocks, or empty when the construct has
    /// no name (e.g. [`ItemKind::Use`], [`ItemKind::Other`]).
    pub name: String,
    /// The declared visibility.
    pub vis: Vis,
    /// Whether this item (or an ancestor) carries a `#[cfg(test)]`-style
    /// attribute — test-only code the semantic passes skip.
    pub cfg_test: bool,
    /// 1-based line of the item's declaration: the first code token after
    /// its attributes (where the visibility or item keyword sits), so
    /// line-anchored escapes (`lint:allow` on the same or preceding line)
    /// address the signature, not an attribute above it.
    pub line: usize,
    /// Byte span start: equals the previous sibling's `span_end` (0 for the
    /// first item), so leading trivia belongs to the item it precedes.
    pub span_start: usize,
    /// Byte span end: one past the item's last byte (closing brace or `;`).
    pub span_end: usize,
    /// Code-token index range of the item in the file's [`TokenStream`]
    /// (attributes included), `[start, end)`.
    pub code_start: usize,
    /// One past the item's last code token.
    pub code_end: usize,
    /// For braced items, the code-token range strictly inside the braces.
    pub body_code: Option<(usize, usize)>,
    /// Parsed children, for `mod { }`, `trait { }` and `impl { }` bodies.
    pub children: Vec<Item>,
    /// For [`ItemKind::Impl`] blocks of the form `impl Trait for Type`:
    /// the trait name.
    pub trait_of: Option<String>,
    /// For [`ItemKind::Use`] / [`ItemKind::ExternCrate`]: the flattened
    /// `(alias, path segments)` imports. A glob import has alias `"*"`.
    pub imports: Vec<(String, Vec<String>)>,
}

/// The parse result for one file: the top-level items plus the trailing
/// trivia tail, together tiling the source exactly.
#[derive(Debug, Clone)]
pub struct ItemTree {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// Byte offset where the post-last-item trailing trivia begins
    /// (equals `source_len` when the file ends exactly at an item).
    pub trailing_start: usize,
    /// Total length of the source in bytes.
    pub source_len: usize,
}

impl ItemTree {
    /// Depth-first iteration over all items (pre-order).
    pub fn walk(&self) -> impl Iterator<Item = &Item> {
        let mut stack: Vec<&Item> = self.items.iter().rev().collect();
        std::iter::from_fn(move || {
            let item = stack.pop()?;
            stack.extend(item.children.iter().rev());
            Some(item)
        })
    }
}

/// Parses one source file into its item tree.
#[must_use]
pub fn parse_source(source: &str) -> ItemTree {
    let stream = TokenStream::new(lex(source));
    parse_stream(&stream, source.len())
}

/// [`parse_source`] over an already-lexed stream.
#[must_use]
pub fn parse_stream(stream: &TokenStream<'_>, source_len: usize) -> ItemTree {
    let parser = Parser { stream };
    let mut items = parser.parse_items(0, stream.code_len(), false);
    let trailing_start = assign_spans(stream, &mut items, 0);
    ItemTree { items, trailing_start, source_len }
}

/// Chains byte spans over `items` starting at `prev_end`; returns the byte
/// offset one past the last item (i.e. where trailing trivia begins).
fn assign_spans(stream: &TokenStream<'_>, items: &mut [Item], prev_end: usize) -> usize {
    let mut prev = prev_end;
    for item in items.iter_mut() {
        item.span_start = prev;
        let last = item.code_end.saturating_sub(1);
        item.span_end = stream.code(last).map_or(prev, |t| t.end()).max(prev);
        prev = item.span_end;
        if let Some((body_start, _)) = item.body_code {
            // Children tile the body interior: the first child starts just
            // after the opening brace.
            let open_end =
                stream.code(body_start.saturating_sub(1)).map_or(item.span_start, |t| t.end());
            assign_spans(stream, &mut item.children, open_end);
        }
    }
    prev
}

/// Item keywords the dispatcher recognises directly.
const MODIFIERS: &[&str] = &["unsafe", "async", "default"];

/// Identifiers that look like calls but are control-flow keywords.
pub(crate) const STMT_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "let", "move", "ref", "mut", "where", "dyn", "impl", "fn", "await",
];

struct Parser<'s, 'a> {
    stream: &'s TokenStream<'a>,
}

impl Parser<'_, '_> {
    fn text(&self, i: usize) -> &str {
        self.stream.code(i).map_or("", |t| t.text)
    }

    fn is_punct(&self, i: usize, p: &str) -> bool {
        self.stream.code(i).is_some_and(|t| t.is_punct(p))
    }

    fn is_ident(&self, i: usize, id: &str) -> bool {
        self.stream.code(i).is_some_and(|t| t.is_ident(id))
    }

    fn line_of(&self, i: usize) -> usize {
        self.stream.code(i).map_or(1, |t| t.line)
    }

    /// Finds the code index of the `}`/`]`/`)` matching the opener at
    /// `open` (which must be an opening delimiter). Returns `end` when
    /// unmatched, so callers still terminate.
    fn match_delim(&self, open: usize, end: usize) -> usize {
        let (o, c) = match self.text(open) {
            "{" => ("{", "}"),
            "[" => ("[", "]"),
            "(" => ("(", ")"),
            _ => return open,
        };
        let mut depth = 1usize;
        let mut j = open + 1;
        while j < end {
            if self.is_punct(j, o) {
                depth += 1;
            } else if self.is_punct(j, c) {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        end.saturating_sub(1)
    }

    /// Parses the items in code-token range `[start, end)`.
    fn parse_items(&self, start: usize, end: usize, inherited_test: bool) -> Vec<Item> {
        let mut items = Vec::new();
        let mut i = start;
        while i < end {
            let (item, next) = self.parse_item(i, end, inherited_test);
            debug_assert!(next > i, "item parser failed to advance");
            items.push(item);
            i = next.max(i + 1);
        }
        items
    }

    /// Parses a single item starting at code index `i`; returns it plus the
    /// code index to resume from.
    fn parse_item(&self, i: usize, end: usize, inherited_test: bool) -> (Item, usize) {
        let code_start = i;
        let mut cfg_test = inherited_test;
        let mut j = i;

        // Attributes: `#[…]` (outer) and `#![…]` (inner, file headers).
        while j < end && self.is_punct(j, "#") {
            let open = if self.is_punct(j + 1, "!") { j + 2 } else { j + 1 };
            if !self.is_punct(open, "[") {
                break;
            }
            let close = self.match_delim(open, end);
            if self.attr_is_cfg_test(j, close) {
                cfg_test = true;
            }
            j = close + 1;
        }
        let line = self.line_of(j.min(end.saturating_sub(1)).max(i));

        // Visibility.
        let mut vis = Vis::Private;
        if self.is_ident(j, "pub") {
            vis = Vis::Pub;
            j += 1;
            if self.is_punct(j, "(") {
                vis = Vis::Restricted;
                j = self.match_delim(j, end) + 1;
            }
        }

        // Leading modifiers (`unsafe fn`, `async fn`, `const fn`,
        // `extern "C" fn`, `default fn`).
        loop {
            if MODIFIERS.contains(&self.text(j)) {
                j += 1;
            } else if self.is_ident(j, "const") && self.is_ident(j + 1, "fn") {
                j += 1;
            } else if self.is_ident(j, "extern")
                && self.stream.code(j + 1).is_some_and(|t| t.kind == TokenKind::Str)
                && self.is_ident(j + 2, "fn")
            {
                j += 2;
            } else {
                break;
            }
        }

        let make =
            |kind: ItemKind, name: String, code_end: usize, body: Option<(usize, usize)>| Item {
                kind,
                name,
                vis,
                cfg_test,
                line,
                span_start: 0,
                span_end: 0,
                code_start,
                code_end,
                body_code: body,
                children: Vec::new(),
                trait_of: None,
                imports: Vec::new(),
            };

        match self.text(j) {
            "mod" => {
                let name = self.ident_after(j);
                let (body, code_end) = self.scan_to_body_or_semi(j, end);
                let mut item = make(ItemKind::Mod, name, code_end, body);
                if let Some((bs, be)) = body {
                    item.children = self.parse_items(bs, be, cfg_test);
                }
                (item, code_end)
            }
            "fn" => {
                let name = self.ident_after(j);
                let (body, code_end) = self.scan_to_body_or_semi(j, end);
                (make(ItemKind::Fn, name, code_end, body), code_end)
            }
            "struct" => {
                let name = self.ident_after(j);
                let (body, code_end) = self.scan_to_body_or_semi(j, end);
                (make(ItemKind::Struct, name, code_end, body), code_end)
            }
            "enum" => {
                let name = self.ident_after(j);
                let (body, code_end) = self.scan_to_body_or_semi(j, end);
                (make(ItemKind::Enum, name, code_end, body), code_end)
            }
            "union" if self.stream.code(j + 1).is_some_and(|t| t.kind == TokenKind::Ident) => {
                let name = self.ident_after(j);
                let (body, code_end) = self.scan_to_body_or_semi(j, end);
                (make(ItemKind::Union, name, code_end, body), code_end)
            }
            "trait" => {
                let name = self.ident_after(j);
                let (body, code_end) = self.scan_to_body_or_semi(j, end);
                let mut item = make(ItemKind::Trait, name, code_end, body);
                if let Some((bs, be)) = body {
                    item.children = self.parse_items(bs, be, cfg_test);
                }
                (item, code_end)
            }
            "impl" => {
                let (name, trait_of, _) = self.impl_head(j + 1, end);
                let (body, code_end) = self.scan_to_body_or_semi(j, end);
                let mut item = make(ItemKind::Impl, name, code_end, body);
                item.trait_of = trait_of;
                if let Some((bs, be)) = body {
                    item.children = self.parse_items(bs, be, cfg_test);
                }
                (item, code_end)
            }
            "use" => {
                let code_end = self.scan_to_semi(j, end);
                let mut item = make(ItemKind::Use, String::new(), code_end, None);
                item.imports = self.parse_use_tree(j + 1, code_end);
                (item, code_end)
            }
            "type" => {
                let name = self.ident_after(j);
                let code_end = self.scan_to_semi(j, end);
                (make(ItemKind::TypeAlias, name, code_end, None), code_end)
            }
            "const" => {
                let name = self.ident_after(j);
                let code_end = self.scan_to_semi(j, end);
                (make(ItemKind::Const, name, code_end, None), code_end)
            }
            "static" => {
                // `static mut NAME` / `static NAME`.
                let after = if self.is_ident(j + 1, "mut") { j + 1 } else { j };
                let name = self.ident_after(after);
                let code_end = self.scan_to_semi(j, end);
                (make(ItemKind::Static, name, code_end, None), code_end)
            }
            "macro_rules" if self.is_punct(j + 1, "!") => {
                let name = self.ident_after(j + 1);
                let code_end = self.skip_macro_body(j + 2, end);
                (make(ItemKind::MacroDef, name, code_end, None), code_end)
            }
            "macro" => {
                let name = self.ident_after(j);
                let (body, code_end) = self.scan_to_body_or_semi(j, end);
                (make(ItemKind::MacroDef, name, code_end, body), code_end)
            }
            "extern" if self.is_ident(j + 1, "crate") => {
                let name = self.ident_after(j + 1);
                let code_end = self.scan_to_semi(j, end);
                let mut item = make(ItemKind::ExternCrate, name.clone(), code_end, None);
                let alias = if self.is_ident(j + 3, "as") { self.ident_after(j + 3) } else { name };
                let target = item.name.clone();
                item.imports = vec![(alias, vec![target])];
                (item, code_end)
            }
            "extern" => {
                // Foreign block `extern "C" { … }`.
                let (body, code_end) = self.scan_to_body_or_semi(j, end);
                (make(ItemKind::Other, String::new(), code_end, body), code_end)
            }
            _ => {
                // Item-position macro invocation (possibly path-qualified,
                // e.g. `seeker_obs::declare! { … }`), or something
                // unmodelled.
                if self.stream.code(j).is_some_and(|t| t.kind == TokenKind::Ident) {
                    let mut k = j;
                    while self.is_punct(k + 1, "::")
                        && self.stream.code(k + 2).is_some_and(|t| t.kind == TokenKind::Ident)
                    {
                        k += 2;
                    }
                    if self.is_punct(k + 1, "!") {
                        let name = self.text(k).to_string();
                        let code_end = self.skip_macro_body(k + 1, end);
                        return (make(ItemKind::MacroInvocation, name, code_end, None), code_end);
                    }
                }
                // Unknown leading token: consume a delimiter group whole,
                // otherwise a single token, so spans still tile.
                let code_end = if matches!(self.text(j), "{" | "(" | "[") {
                    self.match_delim(j, end) + 1
                } else {
                    j + 1
                };
                (make(ItemKind::Other, String::new(), code_end, None), code_end)
            }
        }
    }

    /// Whether the attribute tokens in `[start, close]` are `#[cfg(…test…)]`
    /// (covers `cfg(test)`, `cfg(any(test, …))`, `cfg_attr(test, …)`).
    fn attr_is_cfg_test(&self, start: usize, close: usize) -> bool {
        let mut saw_cfg = false;
        let mut saw_test = false;
        for k in start..=close {
            let Some(t) = self.stream.code(k) else { continue };
            if t.kind == TokenKind::Ident {
                match t.text {
                    "cfg" | "cfg_attr" => saw_cfg = true,
                    "test" => saw_test = true,
                    _ => {}
                }
            }
        }
        saw_cfg && saw_test
    }

    /// The first identifier after code index `i` (skipping one non-ident
    /// token at most — used right after a keyword).
    fn ident_after(&self, i: usize) -> String {
        for k in (i + 1)..(i + 3) {
            if let Some(t) = self.stream.code(k) {
                if t.kind == TokenKind::Ident {
                    return t.text.to_string();
                }
            }
        }
        String::new()
    }

    /// Scans from the item keyword at `kw` to the item terminator: a `{`
    /// body (consumed whole; its interior range is returned) or a `;`, at
    /// zero paren/bracket/angle depth. Returns `(body_range, resume_index)`.
    fn scan_to_body_or_semi(&self, kw: usize, end: usize) -> (Option<(usize, usize)>, usize) {
        let mut j = kw;
        let mut paren = 0isize;
        let mut angle = 0isize;
        while j < end {
            let t = self.text(j);
            match t {
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" if angle > 0 => angle -= 1,
                ">>" if angle > 0 => angle -= 2,
                "{" if paren == 0 && angle <= 0 => {
                    let close = self.match_delim(j, end);
                    return (Some((j + 1, close)), close + 1);
                }
                ";" if paren == 0 && angle <= 0 => return (None, j + 1),
                // An `=` ends any angle context opened by a generic default
                // (`struct S<T = u8> = …` cannot occur, but expressions
                // after `=` may contain `<` comparisons).
                "=" if paren == 0 => angle = 0,
                _ => {}
            }
            j += 1;
        }
        (None, end)
    }

    /// Scans to the `;` terminating a non-braced item (brace/paren groups
    /// on the way — e.g. `use a::{b, c};`, `const X: [u8; 2] = [0, 1];` —
    /// are consumed whole). Returns the resume index (one past the `;`).
    fn scan_to_semi(&self, from: usize, end: usize) -> usize {
        let mut j = from;
        while j < end {
            match self.text(j) {
                "{" | "(" | "[" => j = self.match_delim(j, end) + 1,
                ";" => return j + 1,
                _ => j += 1,
            }
        }
        end
    }

    /// Skips a macro body starting at the `!` (or the first delimiter):
    /// a `{…}` group, or a `(…)`/`[…]` group plus its trailing `;`.
    fn skip_macro_body(&self, from: usize, end: usize) -> usize {
        let mut j = from;
        // Skip `!` and an optional macro name (macro_rules! name).
        while j < end && !matches!(self.text(j), "{" | "(" | "[" | ";") {
            j += 1;
        }
        if j >= end {
            return end;
        }
        if self.text(j) == ";" {
            return j + 1;
        }
        let brace = self.text(j) == "{";
        let close = self.match_delim(j, end);
        let mut resume = close + 1;
        if !brace && self.is_punct(resume, ";") {
            resume += 1;
        }
        resume
    }

    /// Parses the head of an `impl` block (between the `impl` keyword and
    /// its body): returns `(self type name, trait name, head end)`.
    fn impl_head(&self, from: usize, end: usize) -> (String, Option<String>, usize) {
        let mut j = from;
        // Skip the generic parameter list.
        if self.is_punct(j, "<") {
            let mut angle = 0isize;
            while j < end {
                match self.text(j) {
                    "<" => angle += 1,
                    "<<" => angle += 2,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    _ => {}
                }
                j += 1;
                if angle <= 0 {
                    break;
                }
            }
        }
        // Collect the last identifier at angle depth 0 in each of the
        // pre-`for` and post-`for` regions.
        let mut before_for: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        let mut angle = 0isize;
        while j < end {
            let t = self.text(j);
            match t {
                "{" | "where" if angle <= 0 => break,
                ";" => break,
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "for" if angle <= 0 => saw_for = true,
                _ => {
                    if angle <= 0
                        && self.stream.code(j).is_some_and(|tok| tok.kind == TokenKind::Ident)
                        && !STMT_KEYWORDS.contains(&t)
                    {
                        if saw_for {
                            after_for = Some(t.to_string());
                        } else {
                            before_for = Some(t.to_string());
                        }
                    }
                }
            }
            j += 1;
        }
        if saw_for {
            (after_for.unwrap_or_default(), before_for, j)
        } else {
            (before_for.unwrap_or_default(), None, j)
        }
    }

    /// Flattens the use tree in code range `[from, end)` into
    /// `(alias, path)` pairs. `use a::b::{c, d as e, f::*};` yields
    /// `(c, [a,b,c])`, `(e, [a,b,d])`, `(*, [a,b,f])`.
    fn parse_use_tree(&self, from: usize, end: usize) -> Vec<(String, Vec<String>)> {
        let mut out = Vec::new();
        self.use_subtree(from, end, &[], &mut out);
        out
    }

    fn use_subtree(
        &self,
        from: usize,
        end: usize,
        prefix: &[String],
        out: &mut Vec<(String, Vec<String>)>,
    ) {
        let mut path: Vec<String> = prefix.to_vec();
        let mut alias: Option<String> = None;
        let mut j = from;
        let flush =
            |path: &mut Vec<String>, alias: &mut Option<String>, out: &mut Vec<_>, prefix_len| {
                if path.len() > prefix_len {
                    let name =
                        alias.take().unwrap_or_else(|| path.last().cloned().unwrap_or_default());
                    out.push((name, path.clone()));
                }
                path.truncate(prefix_len);
                *alias = None;
            };
        while j < end {
            let Some(t) = self.stream.code(j) else { break };
            match (t.kind, t.text) {
                (TokenKind::Ident, "as") => {
                    alias = Some(self.ident_after(j));
                    j += 2;
                    continue;
                }
                (TokenKind::Ident, id) => {
                    path.push(id.to_string());
                }
                (TokenKind::Punct, "*") => {
                    out.push(("*".to_string(), path.clone()));
                    path.truncate(prefix.len());
                }
                (TokenKind::Punct, "{") => {
                    let close = self.match_delim(j, end);
                    // Each comma-separated subtree shares the current path.
                    let mut seg_start = j + 1;
                    let mut depth = 0usize;
                    for k in (j + 1)..close {
                        match self.text(k) {
                            "{" => depth += 1,
                            "}" => depth = depth.saturating_sub(1),
                            "," if depth == 0 => {
                                self.use_subtree(seg_start, k, &path, out);
                                seg_start = k + 1;
                            }
                            _ => {}
                        }
                    }
                    self.use_subtree(seg_start, close, &path, out);
                    path.truncate(prefix.len());
                    j = close + 1;
                    continue;
                }
                (TokenKind::Punct, ",") => {
                    flush(&mut path, &mut alias, out, prefix.len());
                }
                (TokenKind::Punct, ";") => break,
                _ => {}
            }
            j += 1;
        }
        flush(&mut path, &mut alias, out, prefix.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(items: &[Item]) -> Vec<(&ItemKind, &str)> {
        items.iter().map(|i| (&i.kind, i.name.as_str())).collect()
    }

    #[test]
    fn parses_top_level_items_with_tiling_spans() {
        let src = "//! Doc.\n#![deny(missing_docs)]\n\nuse std::fmt;\n\n/// F.\npub fn f(x: u32) -> u32 { x + 1 }\n\nstruct S { a: u8 }\n\nenum E { A, B }\n";
        let tree = parse_source(src);
        assert_eq!(
            names(&tree.items),
            vec![
                (&ItemKind::Use, ""),
                (&ItemKind::Fn, "f"),
                (&ItemKind::Struct, "S"),
                (&ItemKind::Enum, "E"),
            ]
        );
        // Tiling: spans chain from 0 and the tail completes the file.
        let mut prev = 0;
        for item in &tree.items {
            assert_eq!(item.span_start, prev);
            assert!(item.span_end >= item.span_start);
            prev = item.span_end;
        }
        assert_eq!(tree.trailing_start, prev);
        let rebuilt: String = tree
            .items
            .iter()
            .map(|i| &src[i.span_start..i.span_end])
            .chain(std::iter::once(&src[tree.trailing_start..]))
            .collect();
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn nesting_mod_impl_trait() {
        let src = "mod outer {\n    pub mod inner {\n        pub fn leaf() {}\n    }\n}\nimpl Foo {\n    pub fn method(&self) {}\n    fn private(&self) {}\n}\ntrait T {\n    fn required(&self);\n    fn provided(&self) { self.required() }\n}\n";
        let tree = parse_source(src);
        assert_eq!(tree.items.len(), 3);
        let outer = &tree.items[0];
        assert_eq!(outer.kind, ItemKind::Mod);
        assert_eq!(outer.children[0].name, "inner");
        assert_eq!(outer.children[0].children[0].name, "leaf");
        let imp = &tree.items[1];
        assert_eq!(imp.kind, ItemKind::Impl);
        assert_eq!(imp.name, "Foo");
        assert_eq!(
            names(&imp.children),
            vec![(&ItemKind::Fn, "method"), (&ItemKind::Fn, "private")]
        );
        assert_eq!(imp.children[0].vis, Vis::Pub);
        assert_eq!(imp.children[1].vis, Vis::Private);
        let tr = &tree.items[2];
        assert_eq!(tr.kind, ItemKind::Trait);
        assert_eq!(
            names(&tr.children),
            vec![(&ItemKind::Fn, "required"), (&ItemKind::Fn, "provided")]
        );
        assert!(tr.children[0].body_code.is_none(), "required method has no body");
        assert!(tr.children[1].body_code.is_some(), "provided method has a body");
    }

    #[test]
    fn impl_trait_for_type() {
        let src = "impl fmt::Display for Svm {\n    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }\n}\nimpl<'a, T: Clone> Wrapper<'a, T> {\n    fn get(&self) -> &T { &self.0 }\n}\n";
        let tree = parse_source(src);
        assert_eq!(tree.items[0].name, "Svm");
        assert_eq!(tree.items[0].trait_of.as_deref(), Some("Display"));
        assert_eq!(tree.items[1].name, "Wrapper");
        assert_eq!(tree.items[1].trait_of, None);
    }

    #[test]
    fn cfg_test_attribution_is_inherited() {
        let src = "#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn case() {}\n}\nfn live() {}\n";
        let tree = parse_source(src);
        assert!(tree.items[0].cfg_test);
        assert!(tree.items[0].children.iter().all(|c| c.cfg_test));
        assert!(!tree.items[1].cfg_test);
    }

    #[test]
    fn use_imports_flatten_groups_aliases_and_globs() {
        let src = "use a::b::{c, d as e, f::g, h::*};\nuse crate::rules::Rule;\nuse std::fmt;\n";
        let tree = parse_source(src);
        let imports = &tree.items[0].imports;
        let find = |n: &str| imports.iter().find(|(a, _)| a == n).map(|(_, p)| p.join("::"));
        assert_eq!(find("c").as_deref(), Some("a::b::c"));
        assert_eq!(find("e").as_deref(), Some("a::b::d"));
        assert_eq!(find("g").as_deref(), Some("a::b::f::g"));
        assert_eq!(find("*").as_deref(), Some("a::b::h"));
        assert_eq!(
            tree.items[1].imports,
            vec![("Rule".to_string(), vec!["crate".into(), "rules".into(), "Rule".into()])]
        );
        assert_eq!(
            tree.items[2].imports,
            vec![("fmt".to_string(), vec!["std".into(), "fmt".into()])]
        );
    }

    #[test]
    fn fn_signatures_with_generics_and_where_clauses() {
        let src = "pub fn refresh<F>(graph: &G, compute: &F) -> Vec<usize>\nwhere\n    F: Fn(&G, P) -> Vec<f32> + Sync,\n{\n    Vec::new()\n}\nfn cmp(a: usize, b: usize) -> bool { a < b }\n";
        let tree = parse_source(src);
        assert_eq!(names(&tree.items), vec![(&ItemKind::Fn, "refresh"), (&ItemKind::Fn, "cmp")]);
        assert!(tree.items[0].body_code.is_some());
        assert!(tree.items[1].body_code.is_some());
    }

    #[test]
    fn macros_consts_statics_and_type_aliases() {
        let src = "macro_rules! my_macro { () => {}; }\nseeker_obs::declare! { counters }\npub const LIMIT: usize = 10;\nstatic mut STATE: u8 = 0;\npub type Pairs = Vec<(u32, u32)>;\nextern crate alloc;\n";
        let tree = parse_source(src);
        let kinds: Vec<&ItemKind> = tree.items.iter().map(|i| &i.kind).collect();
        assert_eq!(
            kinds,
            vec![
                &ItemKind::MacroDef,
                &ItemKind::MacroInvocation,
                &ItemKind::Const,
                &ItemKind::Static,
                &ItemKind::TypeAlias,
                &ItemKind::ExternCrate,
            ]
        );
        assert_eq!(tree.items[2].name, "LIMIT");
        assert_eq!(tree.items[3].name, "STATE");
        assert_eq!(tree.items[4].name, "Pairs");
    }

    #[test]
    fn byte_soup_still_tiles() {
        let src = "fn broken( { ] } ) \"unterminated\npub pub pub";
        let tree = parse_source(src);
        let mut prev = 0;
        for item in &tree.items {
            assert_eq!(item.span_start, prev);
            prev = item.span_end;
        }
        assert!(tree.trailing_start <= src.len());
    }

    #[test]
    fn walk_visits_depth_first() {
        let src = "mod a { fn x() {} mod b { fn y() {} } }\nfn z() {}\n";
        let tree = parse_source(src);
        let visited: Vec<&str> = tree.walk().map(|i| i.name.as_str()).collect();
        assert_eq!(visited, vec!["a", "x", "b", "y", "z"]);
    }
}
