//! Dead-`pub` reporting: cross-references the public-API surface (the same
//! extraction that feeds `api/*.api`) against identifier mentions across
//! the whole workspace — sources, tests, benches, examples — and lists
//! `pub` items that nothing outside their defining file refers to.
//!
//! The human-facing report goes to `results/DEADPUB.md` (`--deadpub`,
//! always exits 0). Token-level mention counting cannot see macro
//! expansion or downstream consumers of a published library, so every
//! entry is a *candidate* corpse — "demote to `pub(crate)` or delete" is a
//! judgment call, and the report says which of the two looks right
//! (internal mentions exist → demote; none anywhere → delete).
//!
//! Since v4 the candidate counts are additionally **growth-gated**: the
//! blessed per-crate counts in `api/deadpub.lock` are a ratchet, and
//! `--check-deadpub` fails when any crate's candidate count *increases*
//! over its blessed value — new dead surface cannot land silently, while
//! existing candidates are paid down at leisure (decreases pass, and
//! `--bless-deadpub` records the improvement).

use crate::api_lock::extract_workspace_api;
use crate::lexer::lex;
use crate::tokens::TokenKind;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Where the report is written, relative to the workspace root.
pub const DEADPUB_REPORT: &str = "results/DEADPUB.md";

/// The blessed per-crate candidate counts, relative to the workspace root.
pub const DEADPUB_LOCK: &str = "api/deadpub.lock";

/// One unreferenced `pub` item.
#[derive(Debug, Clone)]
pub struct DeadPub {
    /// The owning crate (package name).
    pub crate_name: String,
    /// The defining file, as recorded in the API snapshot.
    pub file: String,
    /// The item's signature line from the snapshot.
    pub signature: String,
    /// The item's name (the identifier mention counting keyed on).
    pub name: String,
    /// Mentions in the item's own file (besides the definition itself:
    /// `0` means not even self-referenced — likely deletable; `> 0` means
    /// internally used — a `pub(crate)` candidate).
    pub own_file_mentions: usize,
}

/// Extracts the item name from an API-snapshot signature (the identifier
/// after the item keyword), or `None` for signatures that have no
/// standalone name (e.g. `impl` headers, tuple fields).
fn signature_name(signature: &str) -> Option<String> {
    let mut words = signature.split_whitespace().peekable();
    while let Some(word) = words.next() {
        let keyword = matches!(
            word,
            "fn" | "struct"
                | "enum"
                | "union"
                | "trait"
                | "type"
                | "const"
                | "static"
                | "mod"
                | "macro"
        );
        if !keyword {
            continue;
        }
        let name = words.peek()?;
        let name: String = name.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        if name.is_empty() || name == "r" {
            return None;
        }
        return Some(name);
    }
    // Field signatures: `pub total: u64`.
    let field = signature.strip_prefix("pub ")?;
    let name: String = field.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if name.is_empty() || field[name.len()..].trim_start().starts_with(':') {
        if name.is_empty() {
            return None;
        }
        return Some(name);
    }
    None
}

/// Computes the dead-`pub` candidates for the workspace rooted at `root`.
///
/// # Errors
///
/// Propagates I/O errors from traversal or file reads.
pub fn dead_pub_items(root: &Path) -> io::Result<Vec<DeadPub>> {
    // The API snapshots give (crate, file, signature) for every pub item.
    let api = extract_workspace_api(root)?;

    // Count identifier mentions per (name, file) across every Rust source
    // in the workspace — src, tests, benches, examples — excluding
    // generated/vendored trees.
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs_files(root, Path::new(""), &mut files)?;
    let mut mentions: BTreeMap<String, BTreeMap<PathBuf, usize>> = BTreeMap::new();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        for t in lex(&source) {
            if t.kind == TokenKind::Ident {
                *mentions.entry(t.text.to_string()).or_default().entry(rel.clone()).or_insert(0) +=
                    1;
            }
        }
    }

    let mut out = Vec::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for (crate_name, doc) in &api {
        let crate_dir = doc_crate_dir(root, crate_name);
        for line in doc.lines() {
            if line.starts_with('#') || line.trim().is_empty() {
                continue;
            }
            let Some((file, signature)) = line.split_once(": ") else { continue };
            let Some(name) = signature_name(signature) else { continue };
            if !seen.insert((crate_name.clone(), name.clone())) {
                continue;
            }
            let def_file = crate_dir.join(file);
            let by_file = mentions.get(&name);
            let own =
                by_file.and_then(|m| m.get(&def_file)).copied().unwrap_or(0).saturating_sub(1); // the definition itself
            let elsewhere: usize = by_file
                .map(|m| m.iter().filter(|(f, _)| **f != def_file).map(|(_, c)| c).sum())
                .unwrap_or(0);
            if elsewhere == 0 {
                out.push(DeadPub {
                    crate_name: crate_name.clone(),
                    file: file.to_string(),
                    signature: signature.to_string(),
                    name,
                    own_file_mentions: own,
                });
            }
        }
    }
    Ok(out)
}

/// The crate directory an API snapshot's file paths are relative to.
fn doc_crate_dir(root: &Path, crate_name: &str) -> PathBuf {
    for info in crate::walk::workspace_crates(root).unwrap_or_default() {
        if info.name == crate_name {
            return info.dir;
        }
    }
    PathBuf::new()
}

/// Recursively collects workspace `.rs` files (relative paths), skipping
/// vendored/generated trees.
fn collect_rs_files(root: &Path, rel: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let dir = root.join(rel);
    let mut entries: Vec<_> = fs::read_dir(&dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let child = rel.join(name.as_ref());
        if entry.file_type()?.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor" | "fixtures" | ".git" | "results") {
                continue;
            }
            collect_rs_files(root, &child, out)?;
        } else if name.ends_with(".rs") {
            out.push(child);
        }
    }
    Ok(())
}

/// Renders the report and writes it to [`DEADPUB_REPORT`]; returns the
/// report path and the number of candidates.
///
/// # Errors
///
/// Propagates I/O errors from analysis or the report write.
pub fn write_dead_pub_report(root: &Path) -> io::Result<(PathBuf, usize)> {
    let items = dead_pub_items(root)?;
    let path = root.join(DEADPUB_REPORT);
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut doc = String::from(
        "# Dead-`pub` report\n\n\
         Generated by `cargo run -p seeker-lint -- --deadpub`. Each entry is a `pub`\n\
         item no identifier outside its defining file mentions (token-level count\n\
         over src/tests/benches/examples; macros and external consumers are\n\
         invisible, so review before acting). *Internal mentions* counts uses\n\
         within the defining file itself — `> 0` suggests demoting to\n\
         `pub(crate)`, `0` suggests deleting.\n\n",
    );
    if items.is_empty() {
        doc.push_str("No candidates — every `pub` item is referenced somewhere.\n");
    } else {
        doc.push_str("| Crate | File | Item | Internal mentions |\n");
        doc.push_str("|---|---|---|---|\n");
        for item in &items {
            doc.push_str(&format!(
                "| `{}` | `{}` | `{}` | {} |\n",
                item.crate_name, item.file, item.signature, item.own_file_mentions
            ));
        }
    }
    let count = items.len();
    fs::write(&path, doc)?;
    Ok((path, count))
}

/// The current per-crate candidate counts, sorted by crate name.
fn per_crate_counts(items: &[DeadPub]) -> BTreeMap<String, usize> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for item in items {
        *counts.entry(item.crate_name.clone()).or_insert(0) += 1;
    }
    counts
}

/// Checks the dead-`pub` ratchet: fails (returns messages) when any
/// crate's candidate count exceeds its blessed count in
/// `api/deadpub.lock`, or when the lock is missing. Decreases pass.
///
/// # Errors
///
/// Propagates I/O errors from analysis or the lock read.
pub fn check_deadpub(root: &Path) -> io::Result<Vec<String>> {
    let counts = per_crate_counts(&dead_pub_items(root)?);
    let lock_path = root.join(DEADPUB_LOCK);
    let Ok(doc) = fs::read_to_string(&lock_path) else {
        return Ok(vec![format!(
            "{DEADPUB_LOCK}: [deadpub-ratchet] missing lock \
             (run `cargo run -p seeker-lint -- --bless-deadpub`)"
        )]);
    };
    let blessed: BTreeMap<&str, usize> = doc
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (name, count) = l.split_once('\t')?;
            Some((name, count.parse().ok()?))
        })
        .collect();
    let mut failures = Vec::new();
    for (name, &count) in &counts {
        let ceiling = blessed.get(name.as_str()).copied().unwrap_or(0);
        if count > ceiling {
            failures.push(format!(
                "{DEADPUB_LOCK}: [deadpub-ratchet] crate `{name}` has {count} dead-pub \
                 candidate(s), blessed ceiling is {ceiling} — remove the new dead surface \
                 (see `--deadpub` report) or consciously re-bless with `--bless-deadpub`"
            ));
        }
    }
    Ok(failures)
}

/// Regenerates `api/deadpub.lock` with the current per-crate counts.
/// Returns the written path (relative) and the total candidate count.
///
/// # Errors
///
/// Propagates I/O errors from analysis or the lock write.
pub fn bless_deadpub(root: &Path) -> io::Result<(PathBuf, usize)> {
    let items = dead_pub_items(root)?;
    let counts = per_crate_counts(&items);
    let mut doc = String::from(
        "# Dead-pub ratchet — blessed per-crate candidate counts, generated by\n\
         # `cargo run -p seeker-lint -- --bless-deadpub`. CI fails when a crate's\n\
         # count *increases*; decreases are improvements — re-bless to lock them in.\n",
    );
    for (name, count) in &counts {
        doc.push_str(&format!("{name}\t{count}\n"));
    }
    let rel = PathBuf::from(DEADPUB_LOCK);
    if let Some(parent) = root.join(&rel).parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(root.join(&rel), doc)?;
    Ok((rel, items.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_names_are_extracted() {
        assert_eq!(signature_name("pub fn add(a: u32, b: u32) -> u32"), Some("add".to_string()));
        assert_eq!(signature_name("pub struct S"), Some("S".to_string()));
        assert_eq!(signature_name("pub const LIMIT: usize"), Some("LIMIT".to_string()));
        assert_eq!(signature_name("pub total: u64"), Some("total".to_string()));
        assert_eq!(signature_name("pub unsafe fn f()"), Some("f".to_string()));
    }

    #[test]
    fn unreferenced_pub_is_reported_and_referenced_is_not() {
        let root = std::env::temp_dir().join(format!("seeker-lint-dead-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/alpha/src")).expect("mkdir");
        fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n")
            .expect("write");
        fs::write(
            root.join("crates/alpha/Cargo.toml"),
            "[package]\nname = \"alpha\"\nversion = \"0.0.0\"\n",
        )
        .expect("write");
        fs::write(
            root.join("crates/alpha/src/lib.rs"),
            "//! A.\n#![deny(missing_docs)]\n\n/// Used internally only.\npub fn semi(x: u32) -> u32 { x }\n\n/// Truly dead.\npub fn corpse() {}\n\n/// Live: calls semi.\npub fn live(x: u32) -> u32 { semi(x) }\n",
        )
        .expect("write");
        fs::create_dir_all(root.join("tests")).expect("mkdir");
        fs::write(root.join("tests/it.rs"), "#[test]\nfn t() { alpha::live(1); }\n")
            .expect("write");
        let items = dead_pub_items(&root).expect("deadpub");
        let names: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["semi", "corpse"]);
        // `semi` is used in its own file → pub(crate) candidate; `corpse`
        // is untouched → delete candidate.
        assert!(items[0].own_file_mentions > 0);
        assert_eq!(items[1].own_file_mentions, 0);
        let (path, count) = write_dead_pub_report(&root).expect("report");
        assert_eq!(count, 2);
        assert!(fs::read_to_string(path).expect("read").contains("corpse"));

        // Ratchet lifecycle: missing lock → bless → clean → growth fails,
        // shrinkage passes.
        assert_eq!(check_deadpub(&root).expect("check").len(), 1, "missing lock must fail");
        let (rel, blessed) = bless_deadpub(&root).expect("bless");
        assert_eq!(rel, PathBuf::from(DEADPUB_LOCK));
        assert_eq!(blessed, 2);
        assert!(check_deadpub(&root).expect("check").is_empty());
        // A new dead pub item raises the count past the ceiling.
        let lib = root.join("crates/alpha/src/lib.rs");
        let source = fs::read_to_string(&lib).expect("read");
        fs::write(&lib, format!("{source}\n/// Also dead.\npub fn corpse2() {{}}\n"))
            .expect("write");
        let failures = check_deadpub(&root).expect("check");
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("alpha"), "{failures:?}");
        // Removing dead surface below the ceiling passes without re-bless.
        fs::write(
            &lib,
            "//! A.\n#![deny(missing_docs)]\n\n/// Live: used by tests.\npub fn live(x: u32) -> u32 { x }\n",
        )
        .expect("write");
        assert!(check_deadpub(&root).expect("check").is_empty());
        let _ = fs::remove_dir_all(&root);
    }
}
