//! Workspace traversal: finds the `.rs` sources in scope for the lint pass
//! and classifies each one so [`crate::rules`] knows which rules apply.

use crate::rules::FileClass;

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A source file scheduled for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root (used in reports).
    pub path: PathBuf,
    /// How the file participates in the lint pass.
    pub class: FileClass,
}

/// One workspace package, as discovered from its manifest.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// The package name from `[package] name = "…"` (e.g. `seeker-obs`).
    pub name: String,
    /// The crate directory relative to the workspace root (empty for the
    /// root package, `crates/<x>` for members).
    pub dir: PathBuf,
    /// The manifest path relative to the workspace root.
    pub manifest: PathBuf,
    /// The library target name as it appears in `use` paths (dashes
    /// replaced by underscores).
    pub lib_name: String,
}

/// Enumerates the workspace packages (the root package, if its manifest has
/// a `[package]` section, plus every `crates/*` member), sorted by
/// directory. Only packages with a `src/` tree are returned.
///
/// # Errors
///
/// Propagates I/O errors from directory traversal or manifest reads.
pub fn workspace_crates(root: &Path) -> io::Result<Vec<CrateInfo>> {
    // The empty path stands for the root package: joining it is a no-op, so
    // `dir.join("src")` is `src` and `dir.join("Cargo.toml")` is the root
    // manifest.
    let mut dirs = vec![PathBuf::new()];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        for entry in entries {
            let rel = entry.strip_prefix(root).unwrap_or(&entry).to_path_buf();
            dirs.push(rel);
        }
    }
    let mut crates = Vec::new();
    for dir in dirs {
        let manifest_path = root.join(&dir).join("Cargo.toml");
        if !manifest_path.is_file() || !root.join(&dir).join("src").is_dir() {
            continue;
        }
        let manifest = fs::read_to_string(&manifest_path)?;
        let Some(name) = package_name(&manifest) else { continue };
        let lib_name = name.replace('-', "_");
        crates.push(CrateInfo { name, manifest: dir.join("Cargo.toml"), dir, lib_name });
    }
    Ok(crates)
}

/// Extracts `name = "…"` from a manifest's `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_package = t == "[package]";
            continue;
        }
        if !in_package {
            continue;
        }
        if let Some(rest) = t.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(value) = rest.strip_prefix('=') {
                return Some(value.trim().trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Walks the workspace rooted at `root` and returns every `.rs` file in
/// scope, classified. Scope: `src/` and `crates/*/src/`. Vendored stand-in
/// crates (`vendor/`), build output (`target/`), integration `tests/`,
/// `benches/`, `examples/`, and lint test fixtures are all excluded — they
/// are either third-party, test-only, or generated.
///
/// # Errors
///
/// Propagates I/O errors from directory traversal or file reads.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut src_dirs = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> =
            fs::read_dir(&crates_dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort();
        for entry in entries {
            let src = entry.join("src");
            if src.is_dir() {
                src_dirs.push(src);
            }
        }
    }

    let mut files = Vec::new();
    for dir in src_dirs {
        if !dir.is_dir() {
            continue;
        }
        let mut rs_files = Vec::new();
        collect_rs_files(&dir, &mut rs_files)?;
        rs_files.sort();
        let test_modules = file_level_test_modules(&rs_files)?;
        for file in rs_files {
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            let class = classify(&file, &dir, &test_modules);
            files.push(SourceFile { path: rel, class });
        }
    }
    Ok(files)
}

/// Recursively collects `.rs` files under `dir` (skipping `fixtures/`).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "fixtures" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Finds files pulled in as file-level `#[cfg(test)]` modules, e.g. a
/// `mod proptests;` declaration directly under a `#[cfg(test)]` attribute:
/// those whole files are test code.
fn file_level_test_modules(rs_files: &[PathBuf]) -> io::Result<BTreeSet<PathBuf>> {
    let mut test_files = BTreeSet::new();
    for file in rs_files {
        let source = fs::read_to_string(file)?;
        let lines: Vec<&str> = source.lines().collect();
        for (idx, line) in lines.iter().enumerate() {
            let t = line.trim();
            if !(t.starts_with("#[cfg(") && t.contains("test")) {
                continue;
            }
            // Attribute may be followed by more attributes before the item.
            let mut j = idx + 1;
            while j < lines.len() && lines[j].trim_start().starts_with("#[") {
                j += 1;
            }
            let Some(item) = lines.get(j).map(|l| l.trim()) else { continue };
            let Some(rest) = item.strip_prefix("mod ").or_else(|| item.strip_prefix("pub mod "))
            else {
                continue;
            };
            let Some(mod_name) = rest.strip_suffix(';') else { continue };
            let mod_name = mod_name.trim();
            let parent = file.parent().unwrap_or(Path::new(""));
            let base = file_module_base(file, parent);
            for candidate in
                [base.join(format!("{mod_name}.rs")), base.join(mod_name).join("mod.rs")]
            {
                if candidate.is_file() {
                    test_files.insert(candidate);
                }
            }
        }
    }
    Ok(test_files)
}

/// The directory in which a file's submodules live (`src/` for `lib.rs` and
/// `main.rs`, `src/foo/` for `src/foo.rs` or `src/foo/mod.rs`).
fn file_module_base(file: &Path, parent: &Path) -> PathBuf {
    let stem = file.file_stem().and_then(|s| s.to_str()).unwrap_or("");
    if matches!(stem, "lib" | "main" | "mod") {
        parent.to_path_buf()
    } else {
        parent.join(stem)
    }
}

/// Derives a file's [`FileClass`] from its path.
fn classify(file: &Path, src_dir: &Path, test_modules: &BTreeSet<PathBuf>) -> FileClass {
    if test_modules.contains(file) {
        return FileClass::TestCode;
    }
    let name = file.file_name().and_then(|n| n.to_str()).unwrap_or("");
    let in_bin_dir = file
        .parent()
        .and_then(|p| p.file_name())
        .and_then(|n| n.to_str())
        .is_some_and(|n| n == "bin");
    if file == src_dir.join("lib.rs") {
        FileClass::LibraryRoot
    } else if name == "main.rs" && file.parent() == Some(src_dir) {
        FileClass::BinaryRoot
    } else if in_bin_dir {
        FileClass::BinaryRoot
    } else {
        FileClass::Library
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &Path, rel: &str, content: &str) {
        let path = dir.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, content).expect("write");
    }

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("seeker-lint-walk-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn classifies_roots_bins_and_modules() {
        let root = scratch("classify");
        write(&root, "crates/alpha/src/lib.rs", "//! A.\n#![deny(missing_docs)]\n");
        write(&root, "crates/alpha/src/util.rs", "fn x() {}\n");
        write(&root, "crates/beta/src/main.rs", "fn main() {}\n");
        write(&root, "crates/beta/src/bin/extra.rs", "fn main() {}\n");
        write(&root, "src/lib.rs", "//! Root.\n#![deny(missing_docs)]\n");
        let files = workspace_sources(&root).expect("walk");
        let class_of = |suffix: &str| {
            files
                .iter()
                .find(|f| f.path.to_string_lossy().ends_with(suffix))
                .map(|f| f.class)
                .expect("file found")
        };
        assert_eq!(class_of("alpha/src/lib.rs"), FileClass::LibraryRoot);
        assert_eq!(class_of("alpha/src/util.rs"), FileClass::Library);
        assert_eq!(class_of("beta/src/main.rs"), FileClass::BinaryRoot);
        assert_eq!(class_of("bin/extra.rs"), FileClass::BinaryRoot);
        assert_eq!(class_of("src/lib.rs"), FileClass::LibraryRoot);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn file_level_test_modules_are_test_code() {
        let root = scratch("testmod");
        write(
            &root,
            "crates/gamma/src/lib.rs",
            "//! G.\n#![deny(missing_docs)]\n#[cfg(test)]\nmod proptests;\n",
        );
        write(&root, "crates/gamma/src/proptests.rs", "fn helper() { Some(1).unwrap(); }\n");
        let files = workspace_sources(&root).expect("walk");
        let prop = files
            .iter()
            .find(|f| f.path.to_string_lossy().ends_with("proptests.rs"))
            .expect("proptests listed");
        assert_eq!(prop.class, FileClass::TestCode);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn skips_fixture_directories() {
        let root = scratch("fixtures");
        write(&root, "crates/delta/src/lib.rs", "//! D.\n#![deny(missing_docs)]\n");
        write(&root, "crates/delta/src/fixtures/bad.rs", "fn f() { panic!() }\n");
        let files = workspace_sources(&root).expect("walk");
        assert!(files.iter().all(|f| !f.path.to_string_lossy().contains("fixtures")));
        let _ = fs::remove_dir_all(&root);
    }
}
