//! Command-line entry point for the workspace lint pass.
//!
//! Usage: `cargo run -p seeker-lint [-- <workspace-root>]`. With no argument
//! the workspace root is discovered by walking up from the current directory
//! to the first `Cargo.toml` containing a `[workspace]` section. Exits
//! non-zero when violations are found, so CI can gate on it.

#![deny(missing_docs)]

use seeker_lint::lint_workspace;

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match env::args().nth(1).map(PathBuf::from) {
        Some(path) => path,
        None => match discover_workspace_root() {
            Some(path) => path,
            None => {
                eprintln!("seeker-lint: no workspace Cargo.toml found above the current directory");
                return ExitCode::from(2);
            }
        },
    };
    // A mistyped root would otherwise lint zero files and report "clean",
    // silently disarming the CI gate.
    if !root.join("Cargo.toml").is_file() {
        eprintln!("seeker-lint: {} is not a workspace root (no Cargo.toml)", root.display());
        return ExitCode::from(2);
    }
    match lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("seeker-lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            eprintln!("seeker-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("seeker-lint: I/O error while linting {}: {err}", root.display());
            ExitCode::from(2)
        }
    }
}

/// Walks up from the current directory to the first `Cargo.toml` declaring a
/// `[workspace]` section.
fn discover_workspace_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(contents) = std::fs::read_to_string(&manifest) {
            if contents.lines().any(|l| l.trim() == "[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
