//! Command-line entry point for the workspace static-analysis gate.
//!
//! Usage: `cargo run -p seeker-lint [-- [FLAGS] [<workspace-root>]]`.
//!
//! With no flags the full gate runs: all lexical rules, the crate-layering
//! pass (including the unused-dependency check), the public-API lockfile
//! check, the panic-reachability lock check, the hot-path allocation
//! analysis, the unsafe ledger check, the lock-order/condvar analysis, the
//! atomics-ordering audit, and the generated-configuration-doc check.
//! Flags select a subset or switch to snapshot regeneration:
//!
//! - `--rules`          lexical rules only;
//! - `--layering`       crate-layering pass only;
//! - `--check-api`      public-API lockfile check only;
//! - `--bless-api`      regenerate the `api/<crate>.api` snapshots and exit;
//! - `--check-panics`   panic-reachability lock check only;
//! - `--bless-panics`   regenerate `api/panics.lock` and exit;
//! - `--hotpath`        hot-path allocation analysis only;
//! - `--check-unsafe`   unsafe ledger check only (`api/unsafe.lock`);
//! - `--bless-unsafe`   regenerate `api/unsafe.lock` and exit;
//! - `--lock-order`     lock-order/condvar analysis only (prints the graph);
//! - `--atomics`        atomics audit only (prints the ordering inventory);
//! - `--check-config`   generated `docs/CONFIGURATION.md` check only;
//! - `--bless-config`   regenerate `docs/CONFIGURATION.md` and exit;
//! - `--check-deadpub`  dead-`pub` growth ratchet (`api/deadpub.lock`);
//! - `--bless-deadpub`  regenerate `api/deadpub.lock` and exit;
//! - `--deadpub`        write the dead-`pub` report to `results/DEADPUB.md`
//!   (report-only: always exits 0 on success).
//!
//! With no root argument the workspace root is discovered by walking up from
//! the current directory to the first `Cargo.toml` containing a
//! `[workspace]` section. Exits 0 when clean, 1 on violations/drift, 2 on
//! usage or I/O errors, so CI can gate on it.

#![deny(missing_docs)]

use seeker_lint::{
    bless_api, bless_config, bless_deadpub, bless_panics, bless_unsafe, build_call_graph,
    check_api, check_config, check_deadpub, check_layering, check_unsafe, hot_findings,
    lint_workspace, lock_order, panics, render_inventory, render_lock_graph,
};

use std::env;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Which passes a single invocation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Every check pass (the default; see the module docs).
    Full,
    /// Lexical rules only.
    Rules,
    /// Crate-layering pass only.
    Layering,
    /// Public-API lockfile check only.
    CheckApi,
    /// Regenerate the API snapshots.
    BlessApi,
    /// Panic-reachability lock check only.
    CheckPanics,
    /// Regenerate the panic lock.
    BlessPanics,
    /// Hot-path allocation analysis only.
    Hotpath,
    /// Unsafe ledger check only.
    CheckUnsafe,
    /// Regenerate the unsafe ledger.
    BlessUnsafe,
    /// Lock-order/condvar analysis only (with graph output).
    LockOrder,
    /// Atomics audit only (with inventory output).
    Atomics,
    /// Configuration-doc check only.
    CheckConfig,
    /// Regenerate the configuration doc.
    BlessConfig,
    /// Dead-`pub` growth ratchet check.
    CheckDeadPub,
    /// Regenerate the dead-`pub` ratchet lock.
    BlessDeadPub,
    /// Write the dead-`pub` report (report-only).
    DeadPub,
}

fn main() -> ExitCode {
    let mut mode = Mode::Full;
    let mut root_arg: Option<PathBuf> = None;
    for arg in env::args().skip(1) {
        match arg.as_str() {
            "--rules" => mode = Mode::Rules,
            "--layering" => mode = Mode::Layering,
            "--check-api" => mode = Mode::CheckApi,
            "--bless-api" => mode = Mode::BlessApi,
            "--check-panics" => mode = Mode::CheckPanics,
            "--bless-panics" => mode = Mode::BlessPanics,
            "--hotpath" => mode = Mode::Hotpath,
            "--check-unsafe" => mode = Mode::CheckUnsafe,
            "--bless-unsafe" => mode = Mode::BlessUnsafe,
            "--lock-order" => mode = Mode::LockOrder,
            "--atomics" => mode = Mode::Atomics,
            "--check-config" => mode = Mode::CheckConfig,
            "--bless-config" => mode = Mode::BlessConfig,
            "--check-deadpub" => mode = Mode::CheckDeadPub,
            "--bless-deadpub" => mode = Mode::BlessDeadPub,
            "--deadpub" => mode = Mode::DeadPub,
            other if other.starts_with("--") => {
                eprintln!("seeker-lint: unknown flag {other}");
                eprintln!(
                    "usage: seeker-lint [--rules | --layering | --check-api | --bless-api | \
                     --check-panics | --bless-panics | --hotpath | --check-unsafe | \
                     --bless-unsafe | --lock-order | --atomics | --check-config | \
                     --bless-config | --check-deadpub | --bless-deadpub | --deadpub] [root]"
                );
                return ExitCode::from(2);
            }
            path => root_arg = Some(PathBuf::from(path)),
        }
    }
    let root = match root_arg.or_else(discover_workspace_root) {
        Some(path) => path,
        None => {
            eprintln!("seeker-lint: no workspace Cargo.toml found above the current directory");
            return ExitCode::from(2);
        }
    };
    // A mistyped root would otherwise lint zero files and report "clean",
    // silently disarming the CI gate.
    if !root.join("Cargo.toml").is_file() {
        eprintln!("seeker-lint: {} is not a workspace root (no Cargo.toml)", root.display());
        return ExitCode::from(2);
    }

    match mode {
        Mode::BlessApi => {
            return match bless_api(&root) {
                Ok(written) => {
                    for path in &written {
                        println!("seeker-lint: blessed {}", path.display());
                    }
                    println!("seeker-lint: {} API snapshot(s) written", written.len());
                    ExitCode::SUCCESS
                }
                Err(err) => io_error("blessing", &root, &err),
            };
        }
        Mode::BlessPanics => {
            return match bless_panics(&root) {
                Ok(path) => {
                    println!("seeker-lint: blessed {}", path.display());
                    ExitCode::SUCCESS
                }
                Err(err) => io_error("blessing", &root, &err),
            };
        }
        Mode::BlessUnsafe => {
            return match bless_unsafe(&root) {
                Ok((path, count)) => {
                    println!("seeker-lint: blessed {} ({count} unsafe site(s))", path.display());
                    ExitCode::SUCCESS
                }
                Err(err) => io_error("blessing", &root, &err),
            };
        }
        Mode::BlessConfig => {
            return match bless_config(&root) {
                Ok(path) => {
                    println!("seeker-lint: blessed {}", path.display());
                    ExitCode::SUCCESS
                }
                Err(err) => io_error("blessing", &root, &err),
            };
        }
        Mode::BlessDeadPub => {
            return match bless_deadpub(&root) {
                Ok((path, count)) => {
                    println!(
                        "seeker-lint: blessed {} ({count} dead-pub candidate(s))",
                        path.display()
                    );
                    ExitCode::SUCCESS
                }
                Err(err) => io_error("blessing", &root, &err),
            };
        }
        Mode::DeadPub => {
            return match seeker_lint::write_dead_pub_report(&root) {
                Ok((path, count)) => {
                    println!(
                        "seeker-lint: wrote {} ({count} dead-pub candidate(s))",
                        path.display()
                    );
                    ExitCode::SUCCESS
                }
                Err(err) => io_error("dead-pub report for", &root, &err),
            };
        }
        Mode::CheckDeadPub => {
            return match check_deadpub(&root) {
                Ok(failures) => {
                    for f in &failures {
                        println!("{f}");
                    }
                    if failures.is_empty() {
                        println!("seeker-lint: dead-pub ratchet holds ({})", root.display());
                        ExitCode::SUCCESS
                    } else {
                        eprintln!("seeker-lint: {} ratchet failure(s)", failures.len());
                        ExitCode::FAILURE
                    }
                }
                Err(err) => io_error("dead-pub ratchet for", &root, &err),
            };
        }
        _ => {}
    }

    let mut reported = 0usize;
    if matches!(mode, Mode::Full | Mode::Rules) {
        match run_rules(&root) {
            Ok(count) => reported += count,
            Err(code) => return code,
        }
    }
    if matches!(mode, Mode::Full | Mode::Layering) {
        match run_layering(&root) {
            Ok(count) => reported += count,
            Err(code) => return code,
        }
    }
    if matches!(mode, Mode::Full | Mode::CheckApi) {
        match run_api_check(&root) {
            Ok(count) => reported += count,
            Err(code) => return code,
        }
    }
    if matches!(mode, Mode::Full | Mode::CheckUnsafe) {
        match check_unsafe(&root) {
            Ok((violations, drift)) => {
                for v in &violations {
                    println!("{v}");
                }
                for d in &drift {
                    println!("{d}");
                }
                if !(violations.is_empty() && drift.is_empty()) {
                    eprintln!(
                        "seeker-lint: unsafe-ledger failure — write the SAFETY obligation \
                         and/or re-bless with `cargo run -p seeker-lint -- --bless-unsafe`"
                    );
                }
                reported += violations.len() + drift.len();
            }
            Err(err) => return io_error("unsafe ledger for", &root, &err),
        }
    }
    if matches!(mode, Mode::Full | Mode::Atomics) {
        match seeker_lint::atomic_sites(&root) {
            Ok((sites, violations)) => {
                if mode == Mode::Atomics {
                    print!("{}", render_inventory(&sites));
                }
                for v in &violations {
                    println!("{v}");
                }
                reported += violations.len();
            }
            Err(err) => return io_error("atomics audit for", &root, &err),
        }
    }
    if matches!(mode, Mode::Full | Mode::CheckConfig) {
        match check_config(&root) {
            Ok(drift) => {
                if let Some(message) = drift {
                    println!("{message}");
                    reported += 1;
                }
            }
            Err(err) => return io_error("configuration-doc check for", &root, &err),
        }
    }
    if matches!(mode, Mode::Full | Mode::CheckPanics | Mode::Hotpath | Mode::LockOrder) {
        // The semantic passes share one call graph.
        let graph = match build_call_graph(&root) {
            Ok(graph) => graph,
            Err(err) => return io_error("building call graph for", &root, &err),
        };
        if matches!(mode, Mode::Full | Mode::CheckPanics) {
            match panics::check_panics_graph(&root, &graph) {
                Ok(drifts) => {
                    for d in &drifts {
                        println!("{d}");
                    }
                    if !drifts.is_empty() {
                        eprintln!(
                            "seeker-lint: panic-reachability drift — fix the panic path, add \
                             `// lint:allow(panic-reach)` at the definition, or re-bless with \
                             `cargo run -p seeker-lint -- --bless-panics`"
                        );
                    }
                    reported += drifts.len();
                }
                Err(err) => return io_error("panic check for", &root, &err),
            }
        }
        if matches!(mode, Mode::Full | Mode::Hotpath) {
            let findings = hot_findings(&graph);
            for f in &findings {
                println!("{f}");
            }
            if !findings.is_empty() {
                eprintln!(
                    "seeker-lint: hot-path allocation(s) — hoist the allocation out of the \
                     loop or sanction with `// lint:allow(hot-alloc)`"
                );
            }
            reported += findings.len();
        }
        if matches!(mode, Mode::Full | Mode::LockOrder) {
            match lock_order(&root, &graph) {
                Ok(report) => {
                    if mode == Mode::LockOrder {
                        print!("{}", render_lock_graph(&report));
                    }
                    for f in &report.findings {
                        println!("{f}");
                    }
                    if !report.findings.is_empty() {
                        eprintln!(
                            "seeker-lint: lock/condvar finding(s) — restructure the protocol \
                             or sanction with `// lint:allow(lock-order)`"
                        );
                    }
                    reported += report.findings.len();
                }
                Err(err) => return io_error("lock-order analysis for", &root, &err),
            }
        }
    }
    if reported == 0 {
        println!("seeker-lint: clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        eprintln!("seeker-lint: {reported} violation(s)");
        ExitCode::FAILURE
    }
}

/// Reports an I/O failure uniformly and returns the usage exit code.
fn io_error(what: &str, root: &Path, err: &std::io::Error) -> ExitCode {
    eprintln!("seeker-lint: I/O error {what} {}: {err}", root.display());
    ExitCode::from(2)
}

/// Runs the lexical rules; returns the violation count or an exit code on
/// I/O failure.
fn run_rules(root: &Path) -> Result<usize, ExitCode> {
    match lint_workspace(root) {
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            Ok(violations.len())
        }
        Err(err) => Err(io_error("while linting", root, &err)),
    }
}

/// Runs the crate-layering pass; returns the violation count or an exit code
/// on I/O failure.
fn run_layering(root: &Path) -> Result<usize, ExitCode> {
    match check_layering(root) {
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            Ok(violations.len())
        }
        Err(err) => Err(io_error("in layering pass", root, &err)),
    }
}

/// Runs the public-API lockfile check; returns the drift count or an exit
/// code on I/O failure.
fn run_api_check(root: &Path) -> Result<usize, ExitCode> {
    match check_api(root) {
        Ok(drifts) => {
            for d in &drifts {
                println!("{d}");
            }
            if !drifts.is_empty() {
                eprintln!(
                    "seeker-lint: API drift — run `cargo run -p seeker-lint -- --bless-api` \
                     after reviewing the change"
                );
            }
            Ok(drifts.len())
        }
        Err(err) => Err(io_error("in API check", root, &err)),
    }
}

/// Walks up from the current directory to the first `Cargo.toml` declaring a
/// `[workspace]` section.
fn discover_workspace_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(contents) = std::fs::read_to_string(&manifest) {
            if contents.lines().any(|l| l.trim() == "[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
