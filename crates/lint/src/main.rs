//! Command-line entry point for the workspace static-analysis gate.
//!
//! Usage: `cargo run -p seeker-lint [-- [FLAGS] [<workspace-root>]]`.
//!
//! With no flags the full gate runs: all lexical rules, the crate-layering
//! pass (including the unused-dependency check), the public-API lockfile
//! check, the panic-reachability lock check, and the hot-path allocation
//! analysis. Flags select a subset or switch to snapshot regeneration:
//!
//! - `--rules`         lexical rules only;
//! - `--layering`      crate-layering pass only;
//! - `--check-api`     public-API lockfile check only;
//! - `--bless-api`     regenerate the `api/<crate>.api` snapshots and exit;
//! - `--check-panics`  panic-reachability lock check only;
//! - `--bless-panics`  regenerate `api/panics.lock` and exit;
//! - `--hotpath`       hot-path allocation analysis only;
//! - `--deadpub`       write the dead-`pub` report to `results/DEADPUB.md`
//!   (report-only: always exits 0 on success).
//!
//! With no root argument the workspace root is discovered by walking up from
//! the current directory to the first `Cargo.toml` containing a
//! `[workspace]` section. Exits 0 when clean, 1 on violations/drift, 2 on
//! usage or I/O errors, so CI can gate on it.

#![deny(missing_docs)]

use seeker_lint::{
    bless_api, bless_panics, build_call_graph, check_api, check_layering, hot_findings,
    lint_workspace, panics,
};

use std::env;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Which passes a single invocation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Rules + layering + API lock + panic lock + hot-path (the default).
    Full,
    /// Lexical rules only.
    Rules,
    /// Crate-layering pass only.
    Layering,
    /// Public-API lockfile check only.
    CheckApi,
    /// Regenerate the API snapshots.
    BlessApi,
    /// Panic-reachability lock check only.
    CheckPanics,
    /// Regenerate the panic lock.
    BlessPanics,
    /// Hot-path allocation analysis only.
    Hotpath,
    /// Write the dead-`pub` report (report-only).
    DeadPub,
}

fn main() -> ExitCode {
    let mut mode = Mode::Full;
    let mut root_arg: Option<PathBuf> = None;
    for arg in env::args().skip(1) {
        match arg.as_str() {
            "--rules" => mode = Mode::Rules,
            "--layering" => mode = Mode::Layering,
            "--check-api" => mode = Mode::CheckApi,
            "--bless-api" => mode = Mode::BlessApi,
            "--check-panics" => mode = Mode::CheckPanics,
            "--bless-panics" => mode = Mode::BlessPanics,
            "--hotpath" => mode = Mode::Hotpath,
            "--deadpub" => mode = Mode::DeadPub,
            other if other.starts_with("--") => {
                eprintln!("seeker-lint: unknown flag {other}");
                eprintln!(
                    "usage: seeker-lint [--rules | --layering | --check-api | --bless-api | \
                     --check-panics | --bless-panics | --hotpath | --deadpub] [root]"
                );
                return ExitCode::from(2);
            }
            path => root_arg = Some(PathBuf::from(path)),
        }
    }
    let root = match root_arg.or_else(discover_workspace_root) {
        Some(path) => path,
        None => {
            eprintln!("seeker-lint: no workspace Cargo.toml found above the current directory");
            return ExitCode::from(2);
        }
    };
    // A mistyped root would otherwise lint zero files and report "clean",
    // silently disarming the CI gate.
    if !root.join("Cargo.toml").is_file() {
        eprintln!("seeker-lint: {} is not a workspace root (no Cargo.toml)", root.display());
        return ExitCode::from(2);
    }

    match mode {
        Mode::BlessApi => {
            return match bless_api(&root) {
                Ok(written) => {
                    for path in &written {
                        println!("seeker-lint: blessed {}", path.display());
                    }
                    println!("seeker-lint: {} API snapshot(s) written", written.len());
                    ExitCode::SUCCESS
                }
                Err(err) => {
                    eprintln!("seeker-lint: I/O error while blessing {}: {err}", root.display());
                    ExitCode::from(2)
                }
            };
        }
        Mode::BlessPanics => {
            return match bless_panics(&root) {
                Ok(path) => {
                    println!("seeker-lint: blessed {}", path.display());
                    ExitCode::SUCCESS
                }
                Err(err) => {
                    eprintln!("seeker-lint: I/O error while blessing {}: {err}", root.display());
                    ExitCode::from(2)
                }
            };
        }
        Mode::DeadPub => {
            return match seeker_lint::write_dead_pub_report(&root) {
                Ok((path, count)) => {
                    println!(
                        "seeker-lint: wrote {} ({count} dead-pub candidate(s))",
                        path.display()
                    );
                    ExitCode::SUCCESS
                }
                Err(err) => {
                    eprintln!("seeker-lint: I/O error in dead-pub report: {err}");
                    ExitCode::from(2)
                }
            };
        }
        _ => {}
    }

    let mut reported = 0usize;
    if matches!(mode, Mode::Full | Mode::Rules) {
        match run_rules(&root) {
            Ok(count) => reported += count,
            Err(code) => return code,
        }
    }
    if matches!(mode, Mode::Full | Mode::Layering) {
        match run_layering(&root) {
            Ok(count) => reported += count,
            Err(code) => return code,
        }
    }
    if matches!(mode, Mode::Full | Mode::CheckApi) {
        match run_api_check(&root) {
            Ok(count) => reported += count,
            Err(code) => return code,
        }
    }
    if matches!(mode, Mode::Full | Mode::CheckPanics | Mode::Hotpath) {
        // Both semantic passes share one call graph.
        let graph = match build_call_graph(&root) {
            Ok(graph) => graph,
            Err(err) => {
                eprintln!("seeker-lint: I/O error building call graph: {err}");
                return ExitCode::from(2);
            }
        };
        if matches!(mode, Mode::Full | Mode::CheckPanics) {
            match panics::check_panics_graph(&root, &graph) {
                Ok(drifts) => {
                    for d in &drifts {
                        println!("{d}");
                    }
                    if !drifts.is_empty() {
                        eprintln!(
                            "seeker-lint: panic-reachability drift — fix the panic path, add \
                             `// lint:allow(panic-reach)` at the definition, or re-bless with \
                             `cargo run -p seeker-lint -- --bless-panics`"
                        );
                    }
                    reported += drifts.len();
                }
                Err(err) => {
                    eprintln!("seeker-lint: I/O error in panic check: {err}");
                    return ExitCode::from(2);
                }
            }
        }
        if matches!(mode, Mode::Full | Mode::Hotpath) {
            let findings = hot_findings(&graph);
            for f in &findings {
                println!("{f}");
            }
            if !findings.is_empty() {
                eprintln!(
                    "seeker-lint: hot-path allocation(s) — hoist the allocation out of the \
                     loop or sanction with `// lint:allow(hot-alloc)`"
                );
            }
            reported += findings.len();
        }
    }
    if reported == 0 {
        println!("seeker-lint: clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        eprintln!("seeker-lint: {reported} violation(s)");
        ExitCode::FAILURE
    }
}

/// Runs the lexical rules; returns the violation count or an exit code on
/// I/O failure.
fn run_rules(root: &Path) -> Result<usize, ExitCode> {
    match lint_workspace(root) {
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            Ok(violations.len())
        }
        Err(err) => {
            eprintln!("seeker-lint: I/O error while linting {}: {err}", root.display());
            Err(ExitCode::from(2))
        }
    }
}

/// Runs the crate-layering pass; returns the violation count or an exit code
/// on I/O failure.
fn run_layering(root: &Path) -> Result<usize, ExitCode> {
    match check_layering(root) {
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            Ok(violations.len())
        }
        Err(err) => {
            eprintln!("seeker-lint: I/O error in layering pass {}: {err}", root.display());
            Err(ExitCode::from(2))
        }
    }
}

/// Runs the public-API lockfile check; returns the drift count or an exit
/// code on I/O failure.
fn run_api_check(root: &Path) -> Result<usize, ExitCode> {
    match check_api(root) {
        Ok(drifts) => {
            for d in &drifts {
                println!("{d}");
            }
            if !drifts.is_empty() {
                eprintln!(
                    "seeker-lint: API drift — run `cargo run -p seeker-lint -- --bless-api` \
                     after reviewing the change"
                );
            }
            Ok(drifts.len())
        }
        Err(err) => {
            eprintln!("seeker-lint: I/O error in API check {}: {err}", root.display());
            Err(ExitCode::from(2))
        }
    }
}

/// Walks up from the current directory to the first `Cargo.toml` declaring a
/// `[workspace]` section.
fn discover_workspace_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(contents) = std::fs::read_to_string(&manifest) {
            if contents.lines().any(|l| l.trim() == "[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
