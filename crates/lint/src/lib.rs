//! `seeker-lint` — the FriendSeeker workspace's custom static-analysis pass.
//!
//! The repository enforces repo-specific correctness rules that `rustc` and
//! Clippy cannot express (see `docs/LINTING.md`):
//!
//! - [`no-panic`](rules::Rule::NoPanic): no `unwrap()`/`expect()`/`panic!`/
//!   `todo!`/`unimplemented!` in non-test library code;
//! - [`float-cast`](rules::Rule::FloatCast): no bare `as <integer>` casts in
//!   feature/metric code without an explicit rounding step;
//! - [`float-eq`](rules::Rule::FloatEq): no `==`/`!=` against float
//!   literals;
//! - [`undocumented-pub`](rules::Rule::UndocumentedPub): every public item
//!   in a crate-root `lib.rs` carries a doc comment;
//! - [`deny-header`](rules::Rule::DenyHeader): every crate root declares the
//!   mandatory `#![deny(...)]` lints;
//! - [`thread-spawn`](rules::Rule::ThreadSpawn): no raw `thread::spawn`/
//!   `thread::scope` in library code — parallelism goes through the
//!   `seeker-par` pool, whose output is deterministic by construction.
//!
//! Individual sites opt out with a `// lint:allow(<rule>)` comment on the
//! same or the preceding line; the comment doubles as in-tree documentation
//! of *why* the site is exempt.
//!
//! The pass is intentionally text-based (masked-source substring matching,
//! no syntax tree): it is std-only, runs in milliseconds over the whole
//! workspace, and the rules it enforces are all expressible on single
//! lines. See [`mask`] for how comments and string literals are neutralised
//! so the matchers cannot be fooled.

#![deny(missing_docs)]

/// Comment/string masking so matchers see only code.
pub mod mask;
/// The rule matchers and per-file driver.
pub mod rules;
/// Workspace traversal and file classification.
pub mod walk;

/// Core rule types and the per-file entry points.
pub use rules::{lint_source, lint_source_with, Config, FileClass, Rule, Violation};
/// Workspace traversal entry points.
pub use walk::{workspace_sources, SourceFile};

use std::fs;
use std::io;
use std::path::Path;

/// Lints every in-scope source file of the workspace rooted at `root` and
/// returns all violations, ordered by file then line.
///
/// # Errors
///
/// Propagates I/O errors from traversal or file reads.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    lint_workspace_with(root, &Config::default())
}

/// [`lint_workspace`] with an explicit rule configuration.
///
/// # Errors
///
/// Propagates I/O errors from traversal or file reads.
pub fn lint_workspace_with(root: &Path, config: &Config) -> io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    for file in workspace_sources(root)? {
        let source = fs::read_to_string(root.join(&file.path))?;
        violations.extend(rules::lint_source_with(&file.path, file.class, &source, config));
    }
    violations.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lints_a_synthetic_workspace_end_to_end() {
        let root = std::env::temp_dir().join(format!("seeker-lint-ws-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let write = |rel: &str, content: &str| {
            let path = root.join(rel);
            fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
            fs::write(path, content).expect("write");
        };
        write(
            "crates/good/src/lib.rs",
            "//! Good crate.\n#![deny(missing_docs)]\n\n/// Adds.\npub fn add(a: u32, b: u32) -> u32 { a + b }\n",
        );
        write(
            "crates/bad/src/lib.rs",
            "//! Bad crate.\n\npub fn boom(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        let violations = lint_workspace(&root).expect("lint");
        let ids: Vec<&str> = violations.iter().map(|v| v.rule.id()).collect();
        assert_eq!(ids, vec!["deny-header", "no-panic", "undocumented-pub"]);
        assert!(violations.iter().all(|v| v.file.starts_with("crates/bad")));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn the_real_workspace_is_clean() {
        // The crate's own CI gate, exercised as a unit test: walking up from
        // this crate's manifest dir reaches the actual workspace root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let violations = lint_workspace(root).expect("lint");
        assert!(
            violations.is_empty(),
            "workspace has lint violations:\n{}",
            violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        );
    }
}
