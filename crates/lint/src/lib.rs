//! `seeker-lint` — the FriendSeeker workspace's custom static-analysis pass.
//!
//! The repository enforces repo-specific correctness rules that `rustc` and
//! Clippy cannot express (see `docs/LINTING.md`). Since v2 the pass runs on
//! a lossless token stream from a small hand-rolled [`lexer`] (no syntax
//! tree, std-only, milliseconds over the whole workspace) and has three
//! parts:
//!
//! **Lexical rules** ([`rules`]), per source file:
//!
//! - [`no-panic`](rules::Rule::NoPanic): no `unwrap()`/`expect()`/`panic!`/
//!   `todo!`/`unimplemented!` in non-test library code;
//! - [`float-cast`](rules::Rule::FloatCast): no bare `as <integer>` casts in
//!   feature/metric code without an explicit rounding step;
//! - [`float-eq`](rules::Rule::FloatEq): no `==`/`!=` against float
//!   literals;
//! - [`undocumented-pub`](rules::Rule::UndocumentedPub): every public item
//!   in a crate-root `lib.rs` carries a doc comment;
//! - [`deny-header`](rules::Rule::DenyHeader): every crate root declares the
//!   mandatory `#![deny(...)]` lints;
//! - [`thread-spawn`](rules::Rule::ThreadSpawn): no raw `thread::spawn`/
//!   `thread::scope` in library code — parallelism goes through the
//!   `seeker-par` pool;
//! - [`no-print`](rules::Rule::NoPrint): no raw print macros in library
//!   code — output goes through the `seeker-obs` sinks;
//! - [`no-hash-iter`](rules::Rule::NoHashIter): no `HashMap`/`HashSet` in
//!   library code — hash iteration order is nondeterministic and silently
//!   breaks the refinement loop's reproducibility contracts;
//! - [`no-system-time`](rules::Rule::NoSystemTime): no `SystemTime`/
//!   `Instant::now` outside the observability layer and the bench harness;
//! - [`no-unseeded-rng`](rules::Rule::NoUnseededRng): no RNG construction
//!   without an explicit seed.
//!
//! Individual sites opt out with a `// lint:allow(<rule>)` comment on the
//! same or the preceding line; the comment doubles as in-tree documentation
//! of *why* the site is exempt.
//!
//! **Crate-layering enforcement** ([`layers`]): the workspace dependency DAG
//! is declared once ([`layers::LAYER_DAG`]) and validated against every
//! `Cargo.toml` `[dependencies]` table and every `use seeker_*` statement.
//!
//! **Public-API lockfile** ([`api_lock`]): each crate's `pub` item
//! signatures are snapshotted into `api/<crate>.api`; CI fails when the
//! sources drift from the checked-in snapshots, and
//! `cargo run -p seeker-lint -- --bless-api` regenerates them after an
//! intentional change.

#![deny(missing_docs)]

/// Public-API extraction and the `api/<crate>.api` lockfile.
pub mod api_lock;
/// The atomics-ordering audit.
pub mod atomics;
/// The workspace function call graph.
pub mod callgraph;
/// The generated `docs/CONFIGURATION.md` cross-check.
pub mod config_docs;
/// The dead-`pub` report (report-only pass).
pub mod deadpub;
/// Hot-path allocation analysis (call-graph pass).
pub mod hotpath;
/// The crate-layering DAG and its validation passes.
pub mod layers;
/// The hand-rolled lossless Rust lexer.
pub mod lexer;
/// Lock-order and condvar-protocol analysis (call-graph pass).
pub mod locks;
/// Legacy comment/string masking (v1 engine), retained as the reference
/// implementation for the token-vs-line rule-agreement tests.
pub mod mask;
/// Panic-reachability analysis and its lockfile gate (call-graph pass).
pub mod panics;
/// The rule matchers and per-file driver.
pub mod rules;
/// The item-tree parser over the lossless token stream.
pub mod syntax;
/// The token model the lexer produces.
pub mod tokens;
/// The unsafe ledger and its `api/unsafe.lock` gate.
pub mod unsafe_audit;
/// Workspace traversal and file classification.
pub mod walk;

/// API-lockfile entry points.
pub use api_lock::{bless_api, check_api, ApiDrift};
/// Atomics-audit entry points.
pub use atomics::{atomic_sites, render_inventory, AtomicSite, AtomicViolation};
/// Call-graph construction and core types.
pub use callgraph::{build_call_graph, CallGraph, CallTarget};
/// Configuration-doc entry points.
pub use config_docs::{bless_config, check_config, render_config_doc, CONFIG_DOC};
/// Dead-`pub` report and ratchet entry points.
pub use deadpub::{
    bless_deadpub, check_deadpub, dead_pub_items, write_dead_pub_report, DeadPub, DEADPUB_LOCK,
};
/// Hot-path analysis entry points.
pub use hotpath::{check_hotpath, hot_findings, HotFinding, HOT_PATHS};
/// Layering-pass entry points.
pub use layers::{check_layering, LayerViolation, LAYER_DAG};
/// The lexer entry point.
pub use lexer::lex;
/// Lock-order analysis entry points.
pub use locks::{
    acquire_closure, lock_order, render_lock_graph, LockEdge, LockFinding, LockOrderReport,
};
/// Panic-reachability entry points.
pub use panics::{bless_panics, check_panics, panic_entries, PanicDrift, PANICS_LOCK};
/// Core rule types and the per-file entry points.
pub use rules::{lint_source, lint_source_with, Config, FileClass, Rule, Violation};
/// Item-tree parser entry points.
pub use syntax::{parse_source, Item, ItemKind, ItemTree};
/// Token types.
pub use tokens::{Token, TokenKind, TokenStream};
/// Unsafe-ledger entry points.
pub use unsafe_audit::{
    bless_unsafe, check_unsafe, unsafe_sites, UnsafeDrift, UnsafeKind, UnsafeSite, UnsafeViolation,
    UNSAFE_LOCK,
};
/// Workspace traversal entry points.
pub use walk::{workspace_crates, workspace_sources, CrateInfo, SourceFile};

use std::fs;
use std::io;
use std::path::Path;

/// Lints every in-scope source file of the workspace rooted at `root` and
/// returns all violations, ordered by file then line.
///
/// # Errors
///
/// Propagates I/O errors from traversal or file reads.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    lint_workspace_with(root, &Config::default())
}

/// [`lint_workspace`] with an explicit rule configuration.
///
/// # Errors
///
/// Propagates I/O errors from traversal or file reads.
pub fn lint_workspace_with(root: &Path, config: &Config) -> io::Result<Vec<Violation>> {
    // Reads stay serial (I/O-bound, ordering matters for error reporting);
    // the per-file lex+match work fans out over the pool on coarse
    // file-sized units. Output order is restored by the final sort either
    // way, so serial and parallel runs report identically.
    let sources: Vec<(walk::SourceFile, String)> = workspace_sources(root)?
        .into_iter()
        .map(|file| fs::read_to_string(root.join(&file.path)).map(|s| (file, s)))
        .collect::<io::Result<_>>()?;
    let mut violations: Vec<Violation> =
        seeker_par::par_map_cost(&sources, seeker_par::Cost::Heavy, |(file, source)| {
            rules::lint_source_with(&file.path, file.class, source, config)
        })
        .into_iter()
        .flatten()
        .collect();
    violations.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lints_a_synthetic_workspace_end_to_end() {
        let root = std::env::temp_dir().join(format!("seeker-lint-ws-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let write = |rel: &str, content: &str| {
            let path = root.join(rel);
            fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
            fs::write(path, content).expect("write");
        };
        write(
            "crates/good/src/lib.rs",
            "//! Good crate.\n#![deny(missing_docs)]\n\n/// Adds.\npub fn add(a: u32, b: u32) -> u32 { a + b }\n",
        );
        write(
            "crates/bad/src/lib.rs",
            "//! Bad crate.\n\npub fn boom(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        let violations = lint_workspace(&root).expect("lint");
        let ids: Vec<&str> = violations.iter().map(|v| v.rule.id()).collect();
        assert_eq!(ids, vec!["deny-header", "no-panic", "undocumented-pub"]);
        assert!(violations.iter().all(|v| v.file.starts_with("crates/bad")));
        let _ = fs::remove_dir_all(&root);
    }

    fn real_workspace_root() -> &'static Path {
        // Walking up from this crate's manifest dir reaches the actual
        // workspace root.
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root")
    }

    #[test]
    fn the_real_workspace_is_clean() {
        // The crate's own CI gate, exercised as a unit test.
        let violations = lint_workspace(real_workspace_root()).expect("lint");
        assert!(
            violations.is_empty(),
            "workspace has lint violations:\n{}",
            violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        );
    }

    #[test]
    fn the_real_workspace_layering_is_clean() {
        let violations = check_layering(real_workspace_root()).expect("layering");
        assert!(
            violations.is_empty(),
            "workspace has layering violations:\n{}",
            violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        );
    }

    #[test]
    fn the_real_workspace_api_snapshots_are_current() {
        let drifts = check_api(real_workspace_root()).expect("api check");
        assert!(
            drifts.is_empty(),
            "public-API snapshots drifted (run `cargo run -p seeker-lint -- --bless-api`):\n{}",
            drifts.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        );
    }
}
