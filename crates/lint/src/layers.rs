//! Crate-layering enforcement: the workspace's dependency DAG is *declared*
//! here and validated against reality, so layering violations fail CI
//! instead of accreting.
//!
//! The intended architecture (see `DESIGN.md` and `docs/LINTING.md`):
//!
//! ```text
//!             cli   bench   (binaries / harness — may use everything)
//!               \   /
//!         core (friendseeker)   baselines   obfuscation
//!               |                    |           |
//!     trace  spatial  graph  nn  ml  (substrate layer)
//!               |
//!         par  obs              (foundation: par uses only obs,
//!                                obs depends on nothing; substrate
//!                                crates may use both)
//! ```
//!
//! Two sources of truth are checked against the declared DAG:
//!
//! 1. every `seeker-*`/`friendseeker` entry in a crate's `[dependencies]`
//!    table (dev-dependencies are exempt — tests may cross layers);
//! 2. every `seeker_*`/`friendseeker` path mention in the crate's non-test
//!    library sources (catches a dependency smuggled in through an existing
//!    transitive edge).
//!
//! The declared DAG itself is validated to be acyclic, and every workspace
//! crate must appear in it — adding a crate without declaring its layer is
//! itself a violation.

use crate::lexer::lex;
use crate::rules::{self, FileClass};
use crate::tokens::{TokenKind, TokenStream};
use crate::walk::{workspace_crates, workspace_sources, CrateInfo};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The declared dependency DAG: `(crate, allowed direct seeker deps)`.
///
/// Order is layer order (foundations first) for readability; validation
/// does not depend on it.
pub const LAYER_DAG: &[(&str, &[&str])] = &[
    ("seeker-obs", &[]),
    ("seeker-par", &["seeker-obs"]),
    ("seeker-trace", &["seeker-obs"]),
    ("seeker-spatial", &["seeker-obs", "seeker-trace", "seeker-par"]),
    ("seeker-graph", &["seeker-obs", "seeker-trace"]),
    ("seeker-nn", &["seeker-obs", "seeker-par"]),
    ("seeker-ml", &["seeker-obs", "seeker-par"]),
    (
        "friendseeker",
        &[
            "seeker-obs",
            "seeker-par",
            "seeker-trace",
            "seeker-spatial",
            "seeker-graph",
            "seeker-nn",
            "seeker-ml",
        ],
    ),
    (
        "seeker-baselines",
        &["seeker-obs", "seeker-trace", "seeker-spatial", "seeker-graph", "seeker-nn", "seeker-ml"],
    ),
    ("seeker-obfuscation", &["seeker-obs", "seeker-trace", "seeker-spatial"]),
    (
        "seeker-cli",
        &[
            "seeker-obs",
            "seeker-trace",
            "seeker-graph",
            "seeker-ml",
            "friendseeker",
            "seeker-obfuscation",
        ],
    ),
    // The serve I/O plane deliberately does NOT depend on seeker-par: its
    // connection threads must stay off the pool the engine's refinement
    // fans out over (see the seeker-serve crate docs).
    ("seeker-serve", &["seeker-obs", "seeker-trace", "friendseeker"]),
    (
        "seeker-bench",
        &[
            "seeker-obs",
            "seeker-par",
            "seeker-trace",
            "seeker-spatial",
            "seeker-graph",
            "seeker-nn",
            "seeker-ml",
            "friendseeker",
            "seeker-baselines",
            "seeker-obfuscation",
            "seeker-serve",
        ],
    ),
    // The lint binary fans per-file lex/parse out over the pool — the only
    // production crate it may touch (dogfooding seeker-par on coarse units).
    ("seeker-lint", &["seeker-par", "seeker-obs"]),
    (
        "friendseeker-repro",
        &[
            "seeker-obs",
            "seeker-par",
            "seeker-trace",
            "seeker-spatial",
            "seeker-graph",
            "seeker-nn",
            "seeker-ml",
            "friendseeker",
            "seeker-baselines",
            "seeker-obfuscation",
            "seeker-serve",
        ],
    ),
];

/// One layering violation.
#[derive(Debug, Clone)]
pub struct LayerViolation {
    /// The offending crate (package name).
    pub crate_name: String,
    /// Where the violation was observed (`Cargo.toml` or a source file),
    /// relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line (0 when the location is the whole file).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LayerViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [layering] {}", self.file.display(), self.message)
        } else {
            write!(f, "{}:{}: [layering] {}", self.file.display(), self.line, self.message)
        }
    }
}

/// Validates the workspace rooted at `root` against [`LAYER_DAG`].
///
/// # Errors
///
/// Propagates I/O errors from manifest/source reads.
pub fn check_layering(root: &Path) -> io::Result<Vec<LayerViolation>> {
    check_layering_with(root, LAYER_DAG)
}

/// [`check_layering`] against an explicit DAG (used by tests).
///
/// # Errors
///
/// Propagates I/O errors from manifest/source reads.
pub fn check_layering_with(
    root: &Path,
    dag: &[(&str, &[&str])],
) -> io::Result<Vec<LayerViolation>> {
    let mut violations = Vec::new();
    let allowed: BTreeMap<&str, BTreeSet<&str>> =
        dag.iter().map(|(name, deps)| (*name, deps.iter().copied().collect())).collect();
    let known: BTreeSet<&str> = allowed.keys().copied().collect();

    if let Some(cycle) = find_cycle(dag) {
        violations.push(LayerViolation {
            crate_name: cycle.clone(),
            file: PathBuf::from("crates/lint/src/layers.rs"),
            line: 0,
            message: format!("declared layer DAG contains a cycle through `{cycle}`"),
        });
    }

    let crates = workspace_crates(root)?;
    let sources = workspace_sources(root)?;
    let by_lib_name: BTreeMap<String, String> =
        crates.iter().map(|c| (c.lib_name.clone(), c.name.clone())).collect();

    for info in &crates {
        // Independent of DAG membership: a declared-but-unreferenced
        // dependency is dead weight whether or not the crate is layered.
        check_unused_deps(root, info, &sources, &mut violations)?;
        let Some(allowed_deps) = allowed.get(info.name.as_str()) else {
            violations.push(LayerViolation {
                crate_name: info.name.clone(),
                file: info.manifest.clone(),
                line: 0,
                message: format!(
                    "crate `{}` is not declared in the layering DAG (add it to LAYER_DAG in crates/lint/src/layers.rs)",
                    info.name
                ),
            });
            continue;
        };
        check_manifest(root, info, allowed_deps, &known, &mut violations)?;
        check_sources(root, info, &sources, allowed_deps, &by_lib_name, &mut violations)?;
    }
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(violations)
}

/// Checks the `[dependencies]` table of one crate against its allowed set.
fn check_manifest(
    root: &Path,
    info: &CrateInfo,
    allowed: &BTreeSet<&str>,
    known: &BTreeSet<&str>,
    violations: &mut Vec<LayerViolation>,
) -> io::Result<()> {
    let manifest = fs::read_to_string(root.join(&info.manifest))?;
    for (line_no, dep) in manifest_dependencies(&manifest) {
        if !known.contains(dep.as_str()) {
            continue; // external (vendored) dependency; not layered
        }
        if !allowed.contains(dep.as_str()) {
            violations.push(LayerViolation {
                crate_name: info.name.clone(),
                file: info.manifest.clone(),
                line: line_no,
                message: format!(
                    "`{}` must not depend on `{dep}` (allowed: {})",
                    info.name,
                    format_allowed(allowed),
                ),
            });
        }
    }
    Ok(())
}

/// Extracts `(line, package-name)` pairs from a manifest's `[dependencies]`
/// section (dev/build dependency sections are skipped).
fn manifest_dependencies(manifest: &str) -> Vec<(usize, String)> {
    let mut deps = Vec::new();
    let mut in_deps = false;
    for (idx, line) in manifest.lines().enumerate() {
        let t = line.trim();
        if t.starts_with('[') {
            in_deps = t == "[dependencies]";
            continue;
        }
        if !in_deps || t.is_empty() || t.starts_with('#') {
            continue;
        }
        // `name.workspace = true`, `name = { … }`, `name = "1.0"`.
        let name: String =
            t.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_').collect();
        if !name.is_empty() {
            deps.push((idx + 1, name));
        }
    }
    deps
}

/// Scans one crate's non-test sources for `seeker_*`/`friendseeker` path
/// mentions that escape the allowed dependency set.
fn check_sources(
    root: &Path,
    info: &CrateInfo,
    sources: &[crate::walk::SourceFile],
    allowed: &BTreeSet<&str>,
    by_lib_name: &BTreeMap<String, String>,
    violations: &mut Vec<LayerViolation>,
) -> io::Result<()> {
    let src_prefix = info.dir.join("src");
    for file in sources {
        if !file.path.starts_with(&src_prefix) || file.class == FileClass::TestCode {
            continue;
        }
        let source = fs::read_to_string(root.join(&file.path))?;
        let stream = TokenStream::new(lex(&source));
        let test_lines = rules::test_region_lines(&stream);
        let mut reported: BTreeSet<&str> = BTreeSet::new();
        for (i, t) in stream.code_iter() {
            if t.kind != TokenKind::Ident || test_lines.contains(&t.line) {
                continue;
            }
            let Some(dep_name) = by_lib_name.get(t.text) else { continue };
            if dep_name == &info.name {
                continue; // the crate's own name (e.g. in a doc link)
            }
            // Only path-position mentions count: `use seeker_x…` or
            // `seeker_x::…`. A bare ident (variable named like a crate)
            // does not.
            let is_path = stream.code(i + 1).is_some_and(|n| n.is_punct("::"))
                || (i > 0 && stream.code(i - 1).is_some_and(|p| p.is_ident("use")));
            if !is_path {
                continue;
            }
            if !allowed.contains(dep_name.as_str()) && reported.insert(t.text) {
                violations.push(LayerViolation {
                    crate_name: info.name.clone(),
                    file: file.path.clone(),
                    line: t.line,
                    message: format!(
                        "`{}` must not use `{dep_name}` (allowed: {})",
                        info.name,
                        format_allowed(allowed),
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Flags `[dependencies]` entries whose library name never appears as an
/// identifier in the crate's non-test sources (the `unused-dep` rule). A
/// `# lint:allow(unused-dep)` comment on the entry's line or the line above
/// sanctions a deliberate keep (e.g. a dependency used only behind a
/// feature the lint cannot see).
fn check_unused_deps(
    root: &Path,
    info: &CrateInfo,
    sources: &[crate::walk::SourceFile],
    violations: &mut Vec<LayerViolation>,
) -> io::Result<()> {
    let manifest = fs::read_to_string(root.join(&info.manifest))?;
    let deps = manifest_dependencies(&manifest);
    if deps.is_empty() {
        return Ok(());
    }
    // One scan over the crate's non-test sources collects every identifier;
    // each dependency's lib name is then a set lookup.
    let src_prefix = info.dir.join("src");
    let mut idents: BTreeSet<String> = BTreeSet::new();
    for file in sources {
        if !file.path.starts_with(&src_prefix) || file.class == FileClass::TestCode {
            continue;
        }
        let source = fs::read_to_string(root.join(&file.path))?;
        let stream = TokenStream::new(lex(&source));
        let test_lines = rules::test_region_lines(&stream);
        for (_, t) in stream.code_iter() {
            if t.kind == TokenKind::Ident && !test_lines.contains(&t.line) {
                idents.insert(t.text.to_string());
            }
        }
    }
    let manifest_lines: Vec<&str> = manifest.lines().collect();
    for (line_no, dep) in deps {
        let lib = dep.replace('-', "_");
        if idents.contains(&lib) {
            continue;
        }
        let allowed = manifest_lines
            .get(line_no.saturating_sub(1))
            .is_some_and(|l| l.contains("lint:allow(unused-dep)"))
            || (line_no >= 2
                && manifest_lines
                    .get(line_no - 2)
                    .is_some_and(|l| l.contains("lint:allow(unused-dep)")));
        if !allowed {
            violations.push(LayerViolation {
                crate_name: info.name.clone(),
                file: info.manifest.clone(),
                line: line_no,
                message: format!(
                    "[unused-dep] `{dep}` is declared in [dependencies] but `{lib}` never \
                     appears in `{}`'s non-test sources (remove it, or sanction with \
                     `# lint:allow(unused-dep)`)",
                    info.name
                ),
            });
        }
    }
    Ok(())
}

fn format_allowed(allowed: &BTreeSet<&str>) -> String {
    if allowed.is_empty() {
        "none".to_string()
    } else {
        allowed.iter().copied().collect::<Vec<_>>().join(", ")
    }
}

/// Returns a crate on a cycle in `dag`, if any (DFS three-colour marking).
fn find_cycle(dag: &[(&str, &[&str])]) -> Option<String> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let index: BTreeMap<&str, usize> =
        dag.iter().enumerate().map(|(i, (name, _))| (*name, i)).collect();
    let mut marks = vec![Mark::White; dag.len()];

    fn visit(
        node: usize,
        dag: &[(&str, &[&str])],
        index: &BTreeMap<&str, usize>,
        marks: &mut [Mark],
    ) -> Option<usize> {
        marks[node] = Mark::Grey;
        for dep in dag[node].1 {
            let Some(&next) = index.get(dep) else { continue };
            match marks[next] {
                Mark::Grey => return Some(next),
                Mark::White => {
                    if let Some(hit) = visit(next, dag, index, marks) {
                        return Some(hit);
                    }
                }
                Mark::Black => {}
            }
        }
        marks[node] = Mark::Black;
        None
    }

    for start in 0..dag.len() {
        if marks[start] == Mark::White {
            if let Some(hit) = visit(start, dag, &index, &mut marks) {
                return Some(dag[hit].0.to_string());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_declared_dag_is_acyclic() {
        assert!(find_cycle(LAYER_DAG).is_none());
    }

    #[test]
    fn cycles_are_detected() {
        let cyclic: &[(&str, &[&str])] = &[("a", &["b"]), ("b", &["c"]), ("c", &["a"]), ("d", &[])];
        assert!(find_cycle(cyclic).is_some());
    }

    #[test]
    fn manifest_dependency_parsing() {
        let manifest = "[package]\nname = \"x\"\n\n[dependencies]\nseeker-obs.workspace = true\nrand = { path = \"../rand\" }\n# comment\n\n[dev-dependencies]\nproptest.workspace = true\n";
        let deps = manifest_dependencies(manifest);
        let names: Vec<&str> = deps.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(names, vec!["seeker-obs", "rand"]);
        assert_eq!(deps[0].0, 5);
    }

    #[test]
    fn every_workspace_crate_is_declared() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let declared: BTreeSet<&str> = LAYER_DAG.iter().map(|(n, _)| *n).collect();
        for info in workspace_crates(root).expect("crates") {
            assert!(
                declared.contains(info.name.as_str()),
                "crate `{}` missing from LAYER_DAG",
                info.name
            );
        }
    }
}
