//! Public-API lockfile: every `pub` item signature of every workspace crate
//! is extracted (token-level, from the lossless lexer) into a checked-in
//! snapshot at `api/<crate>.api`. CI regenerates the snapshots and fails on
//! any diff, so an accidental public-API break — a renamed function, a
//! changed argument type, a removed re-export — surfaces as a reviewable
//! lockfile change instead of slipping through.
//!
//! The snapshot covers, per non-test library source file of a crate:
//!
//! - `pub` items (`fn`, `struct`, `enum`, `trait`, `type`, `const`,
//!   `static`, `mod`, `use`, `macro`, `union`), captured from the `pub`
//!   keyword through to the item's body/terminator;
//! - `pub` struct fields (`pub name: Type`);
//!
//! with restricted visibility (`pub(crate)`, `pub(super)`, …) and
//! `#[cfg(test)]` regions excluded. Signatures are whitespace-normalised so
//! reformatting does not change the snapshot.
//!
//! Workflow: `cargo run -p seeker-lint -- --bless-api` regenerates the
//! snapshots after an intentional API change; `--check-api` (the CI step)
//! verifies them.

use crate::lexer::lex;
use crate::rules::{self, FileClass};
use crate::tokens::{Token, TokenKind, TokenStream};
use crate::walk::{workspace_crates, workspace_sources, SourceFile};

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory (relative to the workspace root) holding the snapshots.
pub const API_DIR: &str = "api";

/// Item keywords that can follow `pub` and start an API item.
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "use", "mod", "type", "const", "static", "unsafe", "async",
    "extern", "union", "macro",
];

/// One crate's API drift relative to its checked-in snapshot.
#[derive(Debug, Clone)]
pub struct ApiDrift {
    /// The crate (package name).
    pub crate_name: String,
    /// The snapshot path relative to the workspace root.
    pub snapshot: PathBuf,
    /// Signatures present now but missing from the snapshot.
    pub added: Vec<String>,
    /// Signatures in the snapshot but no longer present.
    pub removed: Vec<String>,
    /// True when the snapshot file itself is missing.
    pub missing_snapshot: bool,
}

impl fmt::Display for ApiDrift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.missing_snapshot {
            return write!(
                f,
                "{}: [api-lock] missing snapshot for `{}` (run `cargo run -p seeker-lint -- --bless-api`)",
                self.snapshot.display(),
                self.crate_name
            );
        }
        writeln!(
            f,
            "{}: [api-lock] public API of `{}` drifted from its snapshot \
             (+{} / -{}; review, then `cargo run -p seeker-lint -- --bless-api`):",
            self.snapshot.display(),
            self.crate_name,
            self.added.len(),
            self.removed.len()
        )?;
        for line in &self.added {
            writeln!(f, "  + {line}")?;
        }
        for line in &self.removed {
            writeln!(f, "  - {line}")?;
        }
        Ok(())
    }
}

/// Compares every crate's current public API against `api/<crate>.api`.
///
/// # Errors
///
/// Propagates I/O errors from source or snapshot reads.
pub fn check_api(root: &Path) -> io::Result<Vec<ApiDrift>> {
    let mut drifts = Vec::new();
    for (name, current) in extract_workspace_api(root)? {
        let snapshot_rel = Path::new(API_DIR).join(format!("{name}.api"));
        let snapshot_path = root.join(&snapshot_rel);
        let Ok(snapshot) = fs::read_to_string(&snapshot_path) else {
            drifts.push(ApiDrift {
                crate_name: name,
                snapshot: snapshot_rel,
                added: current.lines().map(str::to_string).collect(),
                removed: Vec::new(),
                missing_snapshot: true,
            });
            continue;
        };
        let now: BTreeSet<&str> = api_entries(&current).collect();
        let locked: BTreeSet<&str> = api_entries(&snapshot).collect();
        if now != locked {
            drifts.push(ApiDrift {
                crate_name: name,
                snapshot: snapshot_rel,
                added: now.difference(&locked).map(|s| (*s).to_string()).collect(),
                removed: locked.difference(&now).map(|s| (*s).to_string()).collect(),
                missing_snapshot: false,
            });
        }
    }
    Ok(drifts)
}

/// Regenerates every `api/<crate>.api` snapshot, removing stale ones.
/// Returns the written snapshot paths (relative to the workspace root).
///
/// # Errors
///
/// Propagates I/O errors from source reads or snapshot writes.
pub fn bless_api(root: &Path) -> io::Result<Vec<PathBuf>> {
    let api_dir = root.join(API_DIR);
    fs::create_dir_all(&api_dir)?;
    let mut written = Vec::new();
    let mut expected = BTreeSet::new();
    for (name, current) in extract_workspace_api(root)? {
        let file_name = format!("{name}.api");
        fs::write(api_dir.join(&file_name), &current)?;
        written.push(Path::new(API_DIR).join(&file_name));
        expected.insert(file_name);
    }
    // Remove snapshots for crates that no longer exist.
    for entry in fs::read_dir(&api_dir)? {
        let entry = entry?;
        let file_name = entry.file_name().to_string_lossy().to_string();
        if file_name.ends_with(".api") && !expected.contains(&file_name) {
            fs::remove_file(entry.path())?;
        }
    }
    Ok(written)
}

/// The non-comment, non-empty entry lines of a snapshot document.
fn api_entries(doc: &str) -> impl Iterator<Item = &str> {
    doc.lines().map(str::trim_end).filter(|l| !l.is_empty() && !l.starts_with('#'))
}

/// Extracts `(crate name, snapshot document)` for every workspace crate.
///
/// # Errors
///
/// Propagates I/O errors from source reads.
pub fn extract_workspace_api(root: &Path) -> io::Result<Vec<(String, String)>> {
    let sources = workspace_sources(root)?;
    let mut out = Vec::new();
    for info in workspace_crates(root)? {
        let src_prefix = info.dir.join("src");
        let crate_sources: Vec<&SourceFile> = sources
            .iter()
            .filter(|f| {
                f.path.starts_with(&src_prefix)
                    && matches!(f.class, FileClass::Library | FileClass::LibraryRoot)
            })
            .collect();
        if crate_sources.is_empty() {
            continue; // binary-only package: no public API surface
        }
        let mut doc = String::new();
        doc.push_str(&format!(
            "# Public-API snapshot of `{}` — generated by `cargo run -p seeker-lint -- --bless-api`.\n\
             # CI fails when this file disagrees with the sources; regenerate after an intentional API change.\n",
            info.name
        ));
        for file in crate_sources {
            let source = fs::read_to_string(root.join(&file.path))?;
            let rel_in_crate = file
                .path
                .strip_prefix(&info.dir)
                .unwrap_or(&file.path)
                .to_string_lossy()
                .replace('\\', "/");
            for signature in extract_pub_signatures(&source) {
                doc.push_str(&rel_in_crate);
                doc.push_str(": ");
                doc.push_str(&signature);
                doc.push('\n');
            }
        }
        out.push((info.name, doc));
    }
    Ok(out)
}

/// Extracts the normalised `pub` item signatures of one source file, in
/// source order.
#[must_use]
pub fn extract_pub_signatures(source: &str) -> Vec<String> {
    let stream = TokenStream::new(lex(source));
    let test_lines = rules::test_region_lines(&stream);
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < stream.code_len() {
        let Some(t) = stream.code(i) else { break };
        if !t.is_ident("pub") || test_lines.contains(&t.line) {
            i += 1;
            continue;
        }
        let Some(next) = stream.code(i + 1) else { break };
        if next.is_punct("(") {
            // Restricted visibility: skip past `pub(crate)` / `pub(in …)`.
            let mut depth = 0usize;
            let mut j = i + 1;
            while let Some(u) = stream.code(j) {
                if u.is_punct("(") {
                    depth += 1;
                } else if u.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        let is_item = next.kind == TokenKind::Ident && ITEM_KEYWORDS.contains(&next.text);
        let is_field =
            next.kind == TokenKind::Ident && stream.code(i + 2).is_some_and(|u| u.is_punct(":"));
        if !is_item && !is_field {
            i += 1;
            continue;
        }
        let (signature, end) = capture_signature(&stream, i, if is_item { next.text } else { ":" });
        out.push(signature);
        i = end;
    }
    out
}

/// Captures the signature starting at code position `i` and returns it with
/// the code position to resume scanning from.
fn capture_signature<'a>(stream: &TokenStream<'a>, i: usize, item_kind: &str) -> (String, usize) {
    // Terminators, at bracket depth 0 relative to the item start:
    // - `use`, `const`, `static`, `type`: `;` only (values and brace groups
    //   belong to the signature);
    // - fields (`:`): `,` or a closing `}`/`)` of the enclosing body;
    // - everything else (`fn`, `struct`, …): `{` (body starts) or `;`.
    let stop_at_brace = !matches!(item_kind, "use" | "const" | "static" | "type" | ":");
    let is_field = item_kind == ":";
    let mut tokens: Vec<&Token<'a>> = Vec::new();
    let mut depth = 0isize;
    let mut j = i;
    while let Some(t) = stream.code(j) {
        if t.kind == TokenKind::Punct {
            match t.text {
                "(" | "[" => depth += 1,
                "{" => {
                    if depth == 0 && stop_at_brace {
                        break;
                    }
                    depth += 1;
                }
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break; // closing of an enclosing body (field case)
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => {
                    j += 1; // consume the terminator, not part of the text
                    break;
                }
                "," if depth == 0 && is_field => break,
                _ => {}
            }
        }
        tokens.push(t);
        j += 1;
    }
    (render_tokens(&tokens), j.max(i + 1))
}

/// Joins tokens with deterministic, readable spacing. Trailing commas
/// before a closing bracket (rustfmt inserts them when wrapping) are
/// dropped, so reformatting a signature does not change the snapshot.
fn render_tokens(tokens: &[&Token<'_>]) -> String {
    let mut out = String::new();
    let mut prev: Option<&Token<'_>> = None;
    for (idx, t) in tokens.iter().enumerate() {
        if t.is_punct(",")
            && tokens.get(idx + 1).is_some_and(|n| {
                n.kind == TokenKind::Punct && matches!(n.text, ")" | "]" | "}" | ">")
            })
        {
            continue;
        }
        if let Some(p) = prev {
            if needs_space(p, t) {
                out.push(' ');
            }
        }
        out.push_str(t.text);
        prev = Some(t);
    }
    out
}

/// Spacing heuristic for rendering signatures: path separators, brackets
/// and angle brackets bind tight; keywords and operators get a space.
fn needs_space(prev: &Token<'_>, next: &Token<'_>) -> bool {
    const TIGHT_BEFORE: &[&str] =
        &[",", ";", ":", "::", "(", ")", "]", "}", ">", ">>", "<", "?", "!", "."];
    const TIGHT_AFTER: &[&str] = &["::", "(", "[", "{", "<", "&", "!", ".", "#"];
    // The return arrow is always spaced on both sides, overriding the tight
    // rule that glues an opening paren to whatever precedes it.
    if prev.is_punct("->") || next.is_punct("->") {
        return true;
    }
    if next.kind == TokenKind::Punct && TIGHT_BEFORE.contains(&next.text) {
        return false;
    }
    if prev.kind == TokenKind::Punct && TIGHT_AFTER.contains(&prev.text) {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_fn_and_struct_signatures() {
        let src = "/// Doc.\npub fn add(a: u32, b: u32) -> u32 { a + b }\n\n/// S.\npub struct S {\n    /// F.\n    pub total: u64,\n    hidden: u8,\n}\n";
        let sigs = extract_pub_signatures(src);
        assert_eq!(
            sigs,
            vec![
                "pub fn add(a: u32, b: u32) -> u32".to_string(),
                "pub struct S".to_string(),
                "pub total: u64".to_string(),
            ]
        );
    }

    #[test]
    fn use_const_and_type_capture_to_semicolon() {
        let src = "pub use std::collections::{BTreeMap, BTreeSet};\npub const LIMIT: usize = 10;\npub type Pairs = Vec<(u32, u32)>;\n";
        let sigs = extract_pub_signatures(src);
        assert_eq!(
            sigs,
            vec![
                "pub use std::collections::{BTreeMap, BTreeSet}".to_string(),
                "pub const LIMIT: usize = 10".to_string(),
                "pub type Pairs = Vec<(u32, u32)>".to_string(),
            ]
        );
    }

    #[test]
    fn restricted_visibility_and_test_code_excluded() {
        let src = "pub(crate) fn internal() {}\n#[cfg(test)]\nmod tests {\n    pub fn helper() {}\n}\npub fn api() {}\n";
        let sigs = extract_pub_signatures(src);
        assert_eq!(sigs, vec!["pub fn api()".to_string()]);
    }

    #[test]
    fn tuple_struct_inner_pub_not_double_counted() {
        let src = "pub struct Wrapper(pub u32);\n";
        let sigs = extract_pub_signatures(src);
        assert_eq!(sigs, vec!["pub struct Wrapper(pub u32)".to_string()]);
    }

    #[test]
    fn signatures_are_format_insensitive() {
        let one = "pub fn f(a: u32, b: &[f64]) -> Vec<f64> { todo!() }";
        let two = "pub fn f(\n    a: u32,\n    b: &[f64],\n) -> Vec<f64> {\n    todo!()\n}";
        let a = extract_pub_signatures(one);
        let b = extract_pub_signatures(two);
        assert_eq!(a, b);
        assert_eq!(a, vec!["pub fn f(a: u32, b: &[f64]) -> Vec<f64>".to_string()]);
    }

    #[test]
    fn enum_and_trait_stop_at_body() {
        let src = "pub enum E { A, B(u32) }\npub trait T: Clone {\n    fn m(&self);\n}\n";
        let sigs = extract_pub_signatures(src);
        assert_eq!(sigs, vec!["pub enum E".to_string(), "pub trait T: Clone".to_string()]);
    }
}
