//! A workspace-wide function call graph built on the item trees from
//! [`crate::syntax`].
//!
//! Nodes are the functions of every *library* source file (binary roots and
//! test code are excluded); edges come from three syntactic call forms:
//!
//! 1. **path calls** — `seg::seg::name(…)`, resolved through `use`-alias
//!    substitution, `crate`/`self`/`super` normalization, and workspace
//!    crate names;
//! 2. **bare calls** — `name(…)`, resolved against the free functions of
//!    the calling crate (same file first, then crate-wide);
//! 3. **method calls** — `recv.name(…)`, resolved by *name* against every
//!    `impl`/`trait` block in the workspace (no type inference).
//!
//! Resolution is honest about its limits: a call that matches more than one
//! candidate becomes [`CallTarget::Ambiguous`] with *all* candidates —
//! never dropped, never arbitrarily picked — so analyses over the graph
//! ([`crate::panics`], [`crate::hotpath`]) are conservative
//! over-approximations. A call whose path leaves the workspace (`std::…`,
//! vendored crates, or a name nothing in the workspace defines) is
//! [`CallTarget::External`].
//!
//! Known over-approximations (documented in `docs/LINTING.md`): calls
//! inside nested functions and closures are attributed to the enclosing
//! named function; tokens inside macro invocation arguments are scanned as
//! ordinary code; method resolution ignores the receiver type entirely.

use crate::rules::{collect_allows, test_region_lines, FileClass, Rule};
use crate::syntax::{parse_stream, Item, ItemKind, Vis, STMT_KEYWORDS};
use crate::tokens::{TokenKind, TokenStream};
use crate::walk::{workspace_crates, workspace_sources, CrateInfo};

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Where a call edge leads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// Exactly one workspace function matched: the node index.
    Resolved(usize),
    /// More than one candidate matched (method-name collisions, duplicate
    /// free-function names). All candidate node indices, sorted.
    Ambiguous(Vec<usize>),
    /// The call leaves the workspace (std, vendored deps) or names nothing
    /// the graph indexes (closures, macro-generated functions).
    External,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallEdge {
    /// The callee as written (`seeker_par::par_map`, `.clone`, `helper`).
    pub callee: String,
    /// 1-based source line of the call site.
    pub line: usize,
    /// Resolution result.
    pub target: CallTarget,
}

/// Why a function counts as a direct panic source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `panic!`, `todo!`, `unimplemented!` or `unreachable!`.
    Macro,
    /// `.unwrap()` or `.expect(…)`.
    Unwrap,
    /// Indexing with an integer literal (`xs[0]`).
    SliceIndex,
}

/// A direct panic site inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What panics.
    pub kind: PanicKind,
    /// The offending token text (`panic`, `unwrap`, `[0]`).
    pub what: String,
    /// 1-based source line.
    pub line: usize,
}

/// An allocation inside a loop body (candidate hot-path finding).
#[derive(Debug, Clone)]
pub struct LoopAlloc {
    /// The allocating construct as written (`Vec::new`, `.clone`,
    /// `format!`).
    pub what: String,
    /// 1-based source line.
    pub line: usize,
    /// Whether a `lint:allow(hot-alloc)` comment sanctions the site.
    pub allowed: bool,
}

/// One function node of the workspace call graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Stable id: `lib_name::module::[Type::]name`.
    pub id: String,
    /// The owning crate's library name (underscored).
    pub crate_name: String,
    /// Source file, relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line of the function item.
    pub line: usize,
    /// The bare function name.
    pub name: String,
    /// For associated functions: the `impl`/`trait` self-type name.
    pub self_type: Option<String>,
    /// Whether the function itself is declared `pub` (ancestor visibility
    /// is not tracked — a deliberate over-approximation, so the panic lock
    /// can only gain entries, not silently lose them).
    pub is_pub: bool,
    /// Whether a `lint:allow(panic-reach)` comment on the signature line
    /// exempts this function from panic propagation.
    pub allow_panic: bool,
    /// Outgoing call edges, in source order.
    pub calls: Vec<CallEdge>,
    /// Direct panic sites in the body.
    pub panics: Vec<PanicSite>,
    /// Allocations inside loop bodies.
    pub loop_allocs: Vec<LoopAlloc>,
}

/// The workspace call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// All function nodes, in (file, line) order.
    pub nodes: Vec<FnNode>,
}

impl CallGraph {
    /// Node index by exact id.
    #[must_use]
    pub fn find(&self, id: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.id == id)
    }

    /// Iterates `(caller index, edge)` over every edge in the graph.
    pub fn edges(&self) -> impl Iterator<Item = (usize, &CallEdge)> {
        self.nodes.iter().enumerate().flat_map(|(i, n)| n.calls.iter().map(move |e| (i, e)))
    }

    /// The callee node indices an edge may lead to (empty for external).
    #[must_use]
    pub fn targets_of(edge: &CallEdge) -> &[usize] {
        match &edge.target {
            CallTarget::Resolved(i) => std::slice::from_ref(i),
            CallTarget::Ambiguous(is) => is,
            CallTarget::External => &[],
        }
    }
}

/// A function as collected before resolution.
struct ProtoNode {
    node: FnNode,
    raw_calls: Vec<RawCall>,
    file_index: usize,
}

/// A call site before resolution.
struct RawCall {
    /// Path segments for path/bare calls; the method name alone for method
    /// calls.
    path: Vec<String>,
    method: bool,
    line: usize,
}

/// Per-file context needed during resolution.
struct FileCtx {
    crate_lib: String,
    module_path: Vec<String>,
    /// alias → full path substitution from the file's `use` items.
    imports: BTreeMap<String, Vec<String>>,
}

/// Builds the call graph for the workspace rooted at `root`.
///
/// # Errors
///
/// Propagates I/O errors from traversal or file reads.
pub fn build_call_graph(root: &Path) -> io::Result<CallGraph> {
    let crates = workspace_crates(root)?;
    let files: Vec<_> = workspace_sources(root)?
        .into_iter()
        .filter(|f| matches!(f.class, FileClass::Library | FileClass::LibraryRoot))
        .collect();
    let sources: Vec<(PathBuf, String)> = files
        .iter()
        .map(|f| fs::read_to_string(root.join(&f.path)).map(|s| (f.path.clone(), s)))
        .collect::<io::Result<_>>()?;
    // Parsing and body scanning are per-file independent: fan out over the
    // pool (coarse file-sized units, same shape as the rule driver).
    let parsed: Vec<(FileCtx, Vec<ProtoNode>)> =
        seeker_par::par_map_indexed_cost(sources.len(), seeker_par::Cost::Heavy, |i| {
            let (path, source) = &sources[i];
            collect_file(&crates, path, source, i)
        });

    let mut protos: Vec<ProtoNode> = Vec::new();
    let mut contexts: Vec<FileCtx> = Vec::new();
    for (ctx, file_protos) in parsed {
        contexts.push(ctx);
        protos.extend(file_protos);
    }
    protos.sort_by(|a, b| a.node.file.cmp(&b.node.file).then(a.node.line.cmp(&b.node.line)));

    let resolver = Resolver::index(&protos, &crates);
    let mut nodes: Vec<FnNode> = Vec::with_capacity(protos.len());
    for proto in &protos {
        let ctx = &contexts[proto.file_index];
        let mut node = proto.node.clone();
        node.calls = proto
            .raw_calls
            .iter()
            .map(|raw| resolver.resolve(raw, ctx, proto.node.self_type.as_deref()))
            .collect();
        nodes.push(node);
    }
    Ok(CallGraph { nodes })
}

/// Parses one file and extracts its proto-nodes (no resolution yet).
fn collect_file(
    crates: &[CrateInfo],
    path: &Path,
    source: &str,
    file_index: usize,
) -> (FileCtx, Vec<ProtoNode>) {
    let stream = TokenStream::new(crate::lexer::lex(source));
    let tree = parse_stream(&stream, source.len());
    let (crate_lib, module_path) = locate(crates, path);
    let test_lines = test_region_lines(&stream);
    let allows = collect_allows(&stream);

    let mut imports = BTreeMap::new();
    for item in tree.walk() {
        if matches!(item.kind, ItemKind::Use | ItemKind::ExternCrate) {
            for (alias, segs) in &item.imports {
                if alias != "*" {
                    imports.insert(alias.clone(), segs.clone());
                }
            }
        }
    }

    let mut protos = Vec::new();
    let mut scope = module_path.clone();
    collect_items(
        &tree.items,
        &stream,
        &crate_lib,
        path,
        &mut scope,
        None,
        &test_lines,
        &allows,
        file_index,
        &mut protos,
    );
    (FileCtx { crate_lib, module_path, imports }, protos)
}

/// Maps a source path to `(lib_name, module path)`.
fn locate(crates: &[CrateInfo], path: &Path) -> (String, Vec<String>) {
    let owner = crates
        .iter()
        .filter(|c| {
            path.starts_with(c.dir.join("src"))
                || (c.dir.as_os_str().is_empty() && path.starts_with("src"))
        })
        .max_by_key(|c| c.dir.as_os_str().len());
    let (lib, src_dir) = match owner {
        Some(c) => (c.lib_name.clone(), c.dir.join("src")),
        None => (String::from("unknown"), PathBuf::from("src")),
    };
    let rel = path.strip_prefix(&src_dir).unwrap_or(path);
    let mut module = Vec::new();
    for comp in rel.components() {
        let seg = comp.as_os_str().to_string_lossy();
        let seg = seg.trim_end_matches(".rs");
        if matches!(seg, "lib" | "main" | "mod") {
            continue;
        }
        module.push(seg.to_string());
    }
    (lib, module)
}

/// Recursively turns `fn` items into proto-nodes.
#[allow(clippy::too_many_arguments)]
fn collect_items(
    items: &[Item],
    stream: &TokenStream<'_>,
    crate_lib: &str,
    path: &Path,
    scope: &mut Vec<String>,
    self_type: Option<&str>,
    test_lines: &std::collections::BTreeSet<usize>,
    allows: &[(usize, Rule)],
    file_index: usize,
    out: &mut Vec<ProtoNode>,
) {
    for item in items {
        if item.cfg_test || test_lines.contains(&item.line) {
            continue;
        }
        match item.kind {
            ItemKind::Fn => {
                let mut segs: Vec<&str> = scope.iter().map(String::as_str).collect();
                if let Some(t) = self_type {
                    segs.push(t);
                }
                segs.push(&item.name);
                let id = std::iter::once(crate_lib)
                    .chain(segs.iter().copied())
                    .collect::<Vec<_>>()
                    .join("::");
                let allow_panic = allows
                    .iter()
                    .any(|&(l, r)| r == Rule::PanicReach && l + 1 >= item.line && l <= item.line);
                let (raw_calls, panics, loop_allocs) = match item.body_code {
                    Some((bs, be)) => scan_body(stream, bs, be, allows),
                    None => (Vec::new(), Vec::new(), Vec::new()),
                };
                out.push(ProtoNode {
                    node: FnNode {
                        id,
                        crate_name: crate_lib.to_string(),
                        file: path.to_path_buf(),
                        line: item.line,
                        name: item.name.clone(),
                        self_type: self_type.map(str::to_string),
                        is_pub: item.vis == Vis::Pub,
                        allow_panic,
                        calls: Vec::new(),
                        panics,
                        loop_allocs,
                    },
                    raw_calls,
                    file_index,
                });
            }
            ItemKind::Mod => {
                scope.push(item.name.clone());
                collect_items(
                    &item.children,
                    stream,
                    crate_lib,
                    path,
                    scope,
                    None,
                    test_lines,
                    allows,
                    file_index,
                    out,
                );
                scope.pop();
            }
            ItemKind::Impl | ItemKind::Trait => {
                collect_items(
                    &item.children,
                    stream,
                    crate_lib,
                    path,
                    scope,
                    Some(&item.name),
                    test_lines,
                    allows,
                    file_index,
                    out,
                );
            }
            _ => {}
        }
    }
}

/// Macro names whose invocation is a direct panic source.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

/// `.method()` names that allocate.
const ALLOC_METHODS: &[&str] = &["to_vec", "clone", "collect", "to_string", "to_owned"];

/// `Type::fn` pairs that allocate.
const ALLOC_PATHS: &[(&str, &str)] = &[("Vec", "new"), ("Box", "new"), ("String", "from")];

/// Scans one function body's code-token range for calls, panic sites and
/// loop allocations, in a single pass.
fn scan_body(
    stream: &TokenStream<'_>,
    start: usize,
    end: usize,
    allows: &[(usize, Rule)],
) -> (Vec<RawCall>, Vec<PanicSite>, Vec<LoopAlloc>) {
    let mut calls = Vec::new();
    let mut panics = Vec::new();
    let mut allocs = Vec::new();
    let loops = loop_ranges(stream, start, end);
    let in_loop = |i: usize| loops.iter().any(|&(s, e)| i >= s && i < e);
    let alloc_allowed = |line: usize| {
        allows.iter().any(|&(l, r)| r == Rule::HotAlloc && (l == line || l + 1 == line))
    };

    let mut i = start;
    while i < end {
        let Some(t) = stream.code(i) else { break };
        if t.kind != TokenKind::Ident && !(t.kind == TokenKind::Punct && t.text == ".") {
            i += 1;
            continue;
        }

        // Method call / method-form panic & alloc sources: `.name`.
        if t.is_punct(".") {
            if let Some(name_tok) = stream.code(i + 1) {
                if name_tok.kind == TokenKind::Ident {
                    let name = name_tok.text;
                    // Optional turbofish before the argument list.
                    let mut after = i + 2;
                    if stream.code(after).is_some_and(|t| t.is_punct("::")) {
                        after = skip_turbofish(stream, after + 1, end);
                    }
                    let has_args = stream.code(after).is_some_and(|t| t.is_punct("("));
                    if has_args {
                        if name == "unwrap" || name == "expect" {
                            panics.push(PanicSite {
                                kind: PanicKind::Unwrap,
                                what: name.to_string(),
                                line: name_tok.line,
                            });
                        }
                        calls.push(RawCall {
                            path: vec![name.to_string()],
                            method: true,
                            line: name_tok.line,
                        });
                        if ALLOC_METHODS.contains(&name) && in_loop(i) {
                            allocs.push(LoopAlloc {
                                what: format!(".{name}"),
                                line: name_tok.line,
                                allowed: alloc_allowed(name_tok.line),
                            });
                        }
                        i = after + 1;
                        continue;
                    }
                }
            }
            i += 1;
            continue;
        }

        // Identifier: macro invocation, path call, bare call, or index base.
        let word = t.text;
        if stream.code(i + 1).is_some_and(|n| n.is_punct("!")) {
            if PANIC_MACROS.contains(&word) {
                panics.push(PanicSite {
                    kind: PanicKind::Macro,
                    what: word.to_string(),
                    line: t.line,
                });
            }
            if word == "format" && in_loop(i) {
                allocs.push(LoopAlloc {
                    what: "format!".to_string(),
                    line: t.line,
                    allowed: alloc_allowed(t.line),
                });
            }
            i += 2;
            continue;
        }

        // A path: Ident (:: Ident)* — possibly ending in a call.
        if STMT_KEYWORDS.contains(&word) {
            i += 1;
            continue;
        }
        let mut segs = vec![word.to_string()];
        let mut j = i + 1;
        while stream.code(j).is_some_and(|t| t.is_punct("::"))
            && stream.code(j + 1).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            segs.push(stream.code(j + 1).map_or("", |t| t.text).to_string());
            j += 2;
        }
        // Optional turbofish: `::<…>` between the path and the arg list.
        let mut after = j;
        if stream.code(after).is_some_and(|t| t.is_punct("::"))
            && stream.code(after + 1).is_some_and(|t| t.is_punct("<"))
        {
            after = skip_turbofish(stream, after + 1, end);
        }
        if stream.code(after).is_some_and(|t| t.is_punct("(")) {
            // Skip definitions re-encountered mid-body (closures have no
            // name; nested `fn` items were consumed by the parser but their
            // bodies are still in our token range — their calls are
            // attributed here by design).
            let prev_is_fn = i > start && stream.code(i - 1).is_some_and(|p| p.is_ident("fn"));
            if !prev_is_fn {
                if segs.len() == 2 {
                    if let Some(&(ty, f)) =
                        ALLOC_PATHS.iter().find(|&&(ty, f)| segs[0] == ty && segs[1] == f)
                    {
                        if in_loop(i) {
                            allocs.push(LoopAlloc {
                                what: format!("{ty}::{f}"),
                                line: t.line,
                                allowed: alloc_allowed(t.line),
                            });
                        }
                    }
                }
                calls.push(RawCall { path: segs, method: false, line: t.line });
            }
            i = after + 1;
            continue;
        }

        // Slice index by literal: `base[0]` where base ends in Ident/`)`/`]`.
        if stream.code(j).is_some_and(|t| t.is_punct("["))
            && stream.code(j + 1).is_some_and(|t| t.kind == TokenKind::Int)
            && stream.code(j + 2).is_some_and(|t| t.is_punct("]"))
        {
            let lit = stream.code(j + 1).map_or("", |t| t.text);
            panics.push(PanicSite {
                kind: PanicKind::SliceIndex,
                what: format!("[{lit}]"),
                line: t.line,
            });
            i = j + 3;
            continue;
        }
        i = j.max(i + 1);
    }
    (calls, panics, allocs)
}

/// Skips a turbofish starting at the `<` (code index `lt`); returns the
/// index one past the matching `>`.
fn skip_turbofish(stream: &TokenStream<'_>, lt: usize, end: usize) -> usize {
    let mut depth = 0isize;
    let mut j = lt;
    while j < end {
        match stream.code(j).map_or("", |t| t.text) {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            "(" | "{" | ";" => return lt, // not a turbofish after all
            _ => {}
        }
        j += 1;
        if depth <= 0 {
            break;
        }
    }
    j
}

/// The code-token index ranges of all loop bodies (for/while/loop) inside
/// `[start, end)`, outermost and nested alike.
pub(crate) fn loop_ranges(
    stream: &TokenStream<'_>,
    start: usize,
    end: usize,
) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = start;
    while i < end {
        let Some(t) = stream.code(i) else { break };
        if t.kind == TokenKind::Ident && matches!(t.text, "for" | "while" | "loop") {
            // Find the body `{` at zero paren/bracket depth (the loop
            // header may contain parenthesised expressions).
            let mut depth = 0isize;
            let mut j = i + 1;
            while j < end {
                match stream.code(j).map_or("", |t| t.text) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    // A `;` before the `{` means this `for`/`while` wasn't
                    // a loop header after all (e.g. `for` inside a type).
                    ";" if depth == 0 => {
                        j = end;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if j < end {
                let close = match_brace(stream, j, end);
                ranges.push((j + 1, close));
            }
        }
        i += 1;
    }
    ranges
}

/// Brace matching over code tokens: index of the `}` matching the `{` at
/// `open`.
pub(crate) fn match_brace(stream: &TokenStream<'_>, open: usize, end: usize) -> usize {
    let mut depth = 1usize;
    let mut j = open + 1;
    while j < end {
        match stream.code(j).map_or("", |t| t.text) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    end.saturating_sub(1)
}

/// Resolution indices over the proto-nodes.
struct Resolver<'p> {
    protos: &'p [ProtoNode],
    /// Exact id → node index.
    by_id: BTreeMap<&'p str, usize>,
    /// Method name → node indices of every associated fn with that name.
    by_method: BTreeMap<&'p str, Vec<usize>>,
    /// `(crate, name)` → free-function node indices.
    free_by_name: BTreeMap<(&'p str, &'p str), Vec<usize>>,
    /// `(Type, name)` → associated-fn node indices (across all crates).
    by_typefn: BTreeMap<(&'p str, &'p str), Vec<usize>>,
    /// Workspace library names.
    lib_names: Vec<String>,
}

impl<'p> Resolver<'p> {
    fn index(protos: &'p [ProtoNode], crates: &[CrateInfo]) -> Self {
        let mut by_id = BTreeMap::new();
        let mut by_method: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_typefn: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, p) in protos.iter().enumerate() {
            by_id.insert(p.node.id.as_str(), i);
            match &p.node.self_type {
                Some(ty) => {
                    by_method.entry(p.node.name.as_str()).or_default().push(i);
                    by_typefn.entry((ty.as_str(), p.node.name.as_str())).or_default().push(i);
                }
                None => {
                    free_by_name
                        .entry((p.node.crate_name.as_str(), p.node.name.as_str()))
                        .or_default()
                        .push(i);
                }
            }
        }
        Self {
            protos,
            by_id,
            by_method,
            free_by_name,
            by_typefn,
            lib_names: crates.iter().map(|c| c.lib_name.clone()).collect(),
        }
    }

    fn resolve(&self, raw: &RawCall, ctx: &FileCtx, self_type: Option<&str>) -> CallEdge {
        let callee =
            if raw.method { format!(".{}", raw.path.join("::")) } else { raw.path.join("::") };
        let target = if raw.method {
            self.resolve_method(&raw.path[0])
        } else {
            self.resolve_path(&raw.path, ctx, self_type)
        };
        CallEdge { callee, line: raw.line, target }
    }

    fn resolve_method(&self, name: &str) -> CallTarget {
        match self.by_method.get(name).map(Vec::as_slice) {
            Some([one]) => CallTarget::Resolved(*one),
            Some(many) if !many.is_empty() => CallTarget::Ambiguous(many.to_vec()),
            _ => CallTarget::External,
        }
    }

    fn resolve_path(&self, path: &[String], ctx: &FileCtx, self_type: Option<&str>) -> CallTarget {
        // Substitute a `use` alias for the first segment.
        let mut segs: Vec<String> = path.to_vec();
        if let Some(full) = ctx.imports.get(&segs[0]) {
            let mut widened = full.clone();
            widened.extend(segs[1..].iter().cloned());
            segs = widened;
        }
        // Normalize `crate`/`self`/`super` and `Self`.
        match segs[0].as_str() {
            "crate" => {
                segs[0] = ctx.crate_lib.clone();
            }
            "self" => {
                let mut abs = vec![ctx.crate_lib.clone()];
                abs.extend(ctx.module_path.iter().cloned());
                abs.extend(segs[1..].iter().cloned());
                segs = abs;
            }
            "super" => {
                let mut parent = ctx.module_path.clone();
                parent.pop();
                let mut abs = vec![ctx.crate_lib.clone()];
                abs.extend(parent);
                abs.extend(segs[1..].iter().cloned());
                segs = abs;
            }
            "Self" => {
                if let Some(ty) = self_type {
                    segs[0] = ty.to_string();
                }
            }
            _ => {}
        }

        // Bare call: free fn in the calling crate.
        if segs.len() == 1 {
            return self.free_in_crate(&ctx.crate_lib, &segs[0]);
        }

        // `Type::fn` where Type is a workspace impl self-type.
        if segs.len() == 2 && !self.lib_names.contains(&segs[0]) {
            if let Some(hits) = self.by_typefn.get(&(segs[0].as_str(), segs[1].as_str())) {
                return narrowed(hits);
            }
            // Not a known type: maybe a module-qualified free fn of the
            // calling crate (`helpers::go()`).
            let mut abs = vec![ctx.crate_lib.clone()];
            abs.extend(segs.iter().cloned());
            if let Some(&i) = self.by_id.get(abs.join("::").as_str()) {
                return CallTarget::Resolved(i);
            }
            return CallTarget::External;
        }

        // Fully qualified path starting with a workspace crate name.
        if self.lib_names.contains(&segs[0]) {
            let id = segs.join("::");
            if let Some(&i) = self.by_id.get(id.as_str()) {
                return CallTarget::Resolved(i);
            }
            // `lib::Type::fn` / `lib::module::Type::fn`: fall back to the
            // `(Type, fn)` index restricted to that crate.
            if segs.len() >= 2 {
                let (ty, name) = (&segs[segs.len() - 2], &segs[segs.len() - 1]);
                if let Some(hits) = self.by_typefn.get(&(ty.as_str(), name.as_str())) {
                    let in_crate: Vec<usize> = hits
                        .iter()
                        .copied()
                        .filter(|&i| self.protos[i].node.crate_name == segs[0])
                        .collect();
                    if !in_crate.is_empty() {
                        return narrowed(&in_crate);
                    }
                }
                // Last resort: a free fn of that crate with the final name
                // (module path may differ from the file layout, e.g.
                // re-exports).
                return self.free_in_crate(&segs[0], &segs[segs.len() - 1]);
            }
            return CallTarget::External;
        }
        CallTarget::External
    }

    fn free_in_crate(&self, crate_lib: &str, name: &str) -> CallTarget {
        match self.free_by_name.get(&(crate_lib, name)).map(Vec::as_slice) {
            Some([one]) => CallTarget::Resolved(*one),
            Some(many) if !many.is_empty() => CallTarget::Ambiguous(many.to_vec()),
            _ => CallTarget::External,
        }
    }
}

/// Collapses a candidate list to `Resolved` when it has exactly one entry.
fn narrowed(hits: &[usize]) -> CallTarget {
    match hits {
        [one] => CallTarget::Resolved(*one),
        many => CallTarget::Ambiguous(many.to_vec()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let root = std::env::temp_dir().join(format!(
            "seeker-lint-cg-{}-{}",
            std::process::id(),
            files.len()
        ));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/alpha/src")).expect("mkdir");
        fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n")
            .expect("write");
        fs::write(
            root.join("crates/alpha/Cargo.toml"),
            "[package]\nname = \"alpha\"\nversion = \"0.0.0\"\n",
        )
        .expect("write");
        for (rel, content) in files {
            let path = root.join(rel);
            fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
            fs::write(path, content).expect("write");
        }
        let graph = build_call_graph(&root).expect("graph");
        let _ = fs::remove_dir_all(&root);
        graph
    }

    #[test]
    fn free_and_method_calls_resolve() {
        let graph = graph_of(&[(
            "crates/alpha/src/lib.rs",
            "//! A.\n#![deny(missing_docs)]\n\nfn helper(x: u32) -> u32 { x }\n\n/// S.\npub struct S;\n\nimpl S {\n    fn m(&self) -> u32 { helper(1) }\n}\n\n/// E.\npub fn entry(s: &S) -> u32 { s.m() }\n",
        )]);
        let ids: Vec<&str> = graph.nodes.iter().map(|n| n.id.as_str()).collect();
        assert_eq!(ids, vec!["alpha::helper", "alpha::S::m", "alpha::entry"]);
        let m = graph.find("alpha::S::m").expect("m");
        let helper = graph.find("alpha::helper").expect("helper");
        assert_eq!(graph.nodes[m].calls[0].target, CallTarget::Resolved(helper));
        let entry = graph.find("alpha::entry").expect("entry");
        assert_eq!(graph.nodes[entry].calls[0].target, CallTarget::Resolved(m));
    }

    #[test]
    fn duplicate_method_names_are_ambiguous_not_dropped() {
        let graph = graph_of(&[(
            "crates/alpha/src/lib.rs",
            "//! A.\n#![deny(missing_docs)]\n\n/// S.\npub struct S;\n/// T.\npub struct T;\nimpl S { fn go(&self) {} }\nimpl T { fn go(&self) {} }\n\n/// E.\npub fn entry(s: &S) { s.go() }\n",
        )]);
        let entry = graph.find("alpha::entry").expect("entry");
        let target = &graph.nodes[entry].calls[0].target;
        match target {
            CallTarget::Ambiguous(hits) => assert_eq!(hits.len(), 2),
            other => panic!("expected ambiguous, got {other:?}"),
        }
    }

    #[test]
    fn panic_sites_and_loop_allocs_are_recorded() {
        let graph = graph_of(&[(
            "crates/alpha/src/lib.rs",
            "//! A.\n#![deny(missing_docs)]\n\nfn risky(v: &[u32]) -> u32 {\n    let first = v[0];\n    let mut out = Vec::new();\n    for x in v {\n        out.push(x.to_string());\n    }\n    first\n}\n",
        )]);
        let risky = graph.find("alpha::risky").expect("risky");
        let node = &graph.nodes[risky];
        assert_eq!(node.panics.len(), 1);
        assert_eq!(node.panics[0].kind, PanicKind::SliceIndex);
        // The Vec::new is OUTSIDE the loop; only .to_string is inside.
        assert_eq!(node.loop_allocs.len(), 1);
        assert_eq!(node.loop_allocs[0].what, ".to_string");
    }

    #[test]
    fn external_and_std_calls_stay_external() {
        let graph = graph_of(&[(
            "crates/alpha/src/lib.rs",
            "//! A.\n#![deny(missing_docs)]\n\n/// E.\npub fn entry() -> u32 { std::cmp::max(1, 2) }\n",
        )]);
        let entry = graph.find("alpha::entry").expect("entry");
        assert_eq!(graph.nodes[entry].calls[0].target, CallTarget::External);
    }

    #[test]
    fn use_alias_resolves_cross_module_calls() {
        let graph = graph_of(&[
            (
                "crates/alpha/src/lib.rs",
                "//! A.\n#![deny(missing_docs)]\nmod inner;\nuse crate::inner::deep;\n\n/// E.\npub fn entry() -> u32 { deep(1) }\n",
            ),
            ("crates/alpha/src/inner.rs", "pub(crate) fn deep(x: u32) -> u32 { x }\n"),
        ]);
        let entry = graph.find("alpha::entry").expect("entry");
        let deep = graph.find("alpha::inner::deep").expect("deep");
        assert_eq!(graph.nodes[entry].calls[0].target, CallTarget::Resolved(deep));
    }

    #[test]
    fn cfg_test_functions_are_excluded() {
        let graph = graph_of(&[(
            "crates/alpha/src/lib.rs",
            "//! A.\n#![deny(missing_docs)]\n\n/// L.\npub fn live() {}\n\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n",
        )]);
        assert!(graph.find("alpha::live").is_some());
        assert!(graph.nodes.iter().all(|n| !n.id.contains("helper")));
    }
}
