//! The token model produced by [`crate::lexer`].
//!
//! Tokens are *lossless*: every byte of the input, including whitespace and
//! comments, belongs to exactly one token, and concatenating the token texts
//! in order reproduces the source exactly. This is the foundation the rule
//! matchers in [`crate::rules`] and the API extractor in [`crate::api_lock`]
//! build on: a matcher that asks "is this identifier `unwrap`?" can never be
//! fooled by `unwrap` appearing inside a string or a comment, because those
//! bytes live in [`TokenKind::Str`] / [`TokenKind::LineComment`] tokens.

use std::fmt;

/// The lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// A run of whitespace (spaces, tabs, newlines, carriage returns).
    Whitespace,
    /// A `//` comment up to (but not including) the terminating newline.
    /// Covers `///` and `//!` doc comments.
    LineComment,
    /// A `/* … */` comment, including nested ones. An unterminated block
    /// comment extends to the end of the file.
    BlockComment,
    /// An identifier or keyword (`fn`, `pub`, `unwrap`, `r#type`, …).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// An integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// A floating-point literal (`1.0`, `2.5e-3`, `1f64`).
    Float,
    /// A string or byte-string literal (`"…"`, `b"…"`), escapes included.
    Str,
    /// A raw (byte-)string literal (`r"…"`, `r#"…"#`, `br##"…"##`).
    RawStr,
    /// A character or byte literal (`'x'`, `'\''`, `b'\n'`).
    Char,
    /// A punctuation token; multi-character operators (`::`, `==`, `..=`,
    /// `->`) lex as one token.
    Punct,
    /// A byte sequence the lexer does not recognise (kept lossless; never
    /// produced for valid Rust).
    Unknown,
}

impl TokenKind {
    /// Whether tokens of this kind are code (not whitespace or comments).
    #[must_use]
    pub fn is_code(self) -> bool {
        !matches!(self, TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// One lexed token: a kind plus its exact byte span in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// The lexical class.
    pub kind: TokenKind,
    /// The exact source text (concatenating all token texts reproduces the
    /// input byte-for-byte).
    pub text: &'a str,
    /// Byte offset of the first byte in the source.
    pub start: usize,
    /// 1-based line number of the token's first byte.
    pub line: usize,
}

impl<'a> Token<'a> {
    /// Byte offset one past the last byte.
    #[must_use]
    pub fn end(&self) -> usize {
        self.start + self.text.len()
    }

    /// Whether this is an [`TokenKind::Ident`] with exactly this text.
    #[must_use]
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether this is a [`TokenKind::Punct`] with exactly this text.
    #[must_use]
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

impl fmt::Display for Token<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}({:?})@{}:{}", self.kind, self.text, self.line, self.start)
    }
}

/// A lexed file: the full lossless token list plus an index of the code
/// tokens (everything except whitespace and comments), which is what most
/// rule matchers iterate.
#[derive(Debug, Clone)]
pub struct TokenStream<'a> {
    tokens: Vec<Token<'a>>,
    code: Vec<usize>,
}

impl<'a> TokenStream<'a> {
    /// Wraps a lossless token list (as produced by [`crate::lexer::lex`]).
    #[must_use]
    pub fn new(tokens: Vec<Token<'a>>) -> Self {
        let code =
            tokens.iter().enumerate().filter(|(_, t)| t.kind.is_code()).map(|(i, _)| i).collect();
        TokenStream { tokens, code }
    }

    /// All tokens, including whitespace and comments, in source order.
    #[must_use]
    pub fn all(&self) -> &[Token<'a>] {
        &self.tokens
    }

    /// The number of code tokens.
    #[must_use]
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// The `i`-th code token (whitespace and comments skipped).
    #[must_use]
    pub fn code(&self, i: usize) -> Option<&Token<'a>> {
        self.code.get(i).map(|&idx| &self.tokens[idx])
    }

    /// The index into [`Self::all`] of the `i`-th code token.
    #[must_use]
    pub fn code_index(&self, i: usize) -> Option<usize> {
        self.code.get(i).copied()
    }

    /// Iterates `(code_position, token)` over the code tokens.
    pub fn code_iter(&self) -> impl Iterator<Item = (usize, &Token<'a>)> {
        self.code.iter().enumerate().map(move |(pos, &idx)| (pos, &self.tokens[idx]))
    }
}
