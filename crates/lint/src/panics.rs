//! Panic-reachability analysis over the workspace call graph, gated by a
//! blessed lockfile (`api/panics.lock`) in the style of the public-API
//! lockfile ([`crate::api_lock`]).
//!
//! A function is a **direct panic source** when its body contains a
//! panic-family macro (`panic!`, `todo!`, `unimplemented!`,
//! `unreachable!`), an `.unwrap()`/`.expect(…)` call, or a slice index by
//! integer literal. Panickiness then propagates *backwards* along call
//! edges: a caller of a panicky function is panicky, and an
//! [`crate::callgraph::CallTarget::Ambiguous`] edge propagates from **any**
//! candidate — the analysis is a conservative over-approximation, so the
//! lock can only shrink through genuine fixes, never through resolution
//! accidents.
//!
//! The gate snapshots which `pub` functions are panicky into
//! `api/panics.lock` (sorted ids, one per line). `--check-panics` fails on
//! *any* difference — a new panic path must be either fixed, sanctioned
//! with `// lint:allow(panic-reach)` on the function's signature line, or
//! deliberately re-blessed; a fixed path must be re-blessed too, so the
//! lock never goes stale. Functions carrying `lint:allow(panic-reach)` are
//! treated as non-panicking (propagation stops there), documenting at the
//! definition site that the panic is a contract violation by the caller.

use crate::callgraph::{build_call_graph, CallGraph};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Location of the panic lock, relative to the workspace root.
pub const PANICS_LOCK: &str = "api/panics.lock";

/// One panicky `pub` function, with the evidence chain.
#[derive(Debug, Clone)]
pub struct PanicEntry {
    /// The function's call-graph id.
    pub id: String,
    /// Witness: ids from this function to a direct panic source (inclusive
    /// on both ends; a direct source is a one-element chain).
    pub chain: Vec<String>,
    /// Human-readable description of the final panic site.
    pub site: String,
}

/// One difference between the computed panic set and the blessed lock.
#[derive(Debug, Clone)]
pub enum PanicDrift {
    /// The lockfile does not exist yet.
    MissingLock,
    /// A `pub` function reaches a panic but is not in the lock.
    Added(PanicEntry),
    /// A lock entry no longer reaches any panic (stale — re-bless).
    Removed(String),
}

impl fmt::Display for PanicDrift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PanicDrift::MissingLock => {
                write!(f, "[panic-reach] {PANICS_LOCK} missing — run --bless-panics")
            }
            PanicDrift::Added(entry) => write!(
                f,
                "[panic-reach] new panic path: {} → {} ({})",
                entry.id,
                entry.chain.join(" → "),
                entry.site
            ),
            PanicDrift::Removed(id) => {
                write!(f, "[panic-reach] stale lock entry (panic fixed — re-bless): {id}")
            }
        }
    }
}

/// Computes the panicky `pub` functions of a call graph, sorted by id.
#[must_use]
pub fn panic_entries(graph: &CallGraph) -> Vec<PanicEntry> {
    let n = graph.nodes.len();
    // Reverse adjacency: callee → callers.
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (from, edge) in graph.edges() {
        for &to in CallGraph::targets_of(edge) {
            callers[to].push(from);
        }
    }
    // `via[i]` records the callee that made node i panicky, for witnesses.
    let mut via: Vec<Option<usize>> = vec![None; n];
    let mut panicky = vec![false; n];
    let mut queue: Vec<usize> = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if !node.allow_panic && !node.panics.is_empty() {
            panicky[i] = true;
            queue.push(i);
        }
    }
    while let Some(j) = queue.pop() {
        for &caller in &callers[j] {
            if !panicky[caller] && !graph.nodes[caller].allow_panic {
                panicky[caller] = true;
                via[caller] = Some(j);
                queue.push(caller);
            }
        }
    }

    let mut entries: Vec<PanicEntry> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|&(i, node)| panicky[i] && node.is_pub)
        .map(|(i, node)| {
            let mut chain = vec![node.id.clone()];
            let mut cursor = i;
            while let Some(next) = via[cursor] {
                chain.push(graph.nodes[next].id.clone());
                cursor = next;
            }
            let site = graph.nodes[cursor].panics.first().map_or_else(
                || "panic site".to_string(),
                |p| format!("{} at {}:{}", p.what, graph.nodes[cursor].file.display(), p.line),
            );
            PanicEntry { id: node.id.clone(), chain, site }
        })
        .collect();
    entries.sort_by(|a, b| a.id.cmp(&b.id));
    entries.dedup_by(|a, b| a.id == b.id);
    entries
}

/// Compares the computed panic set against the blessed lock.
///
/// # Errors
///
/// Propagates I/O errors from graph construction or the lock read.
pub fn check_panics(root: &Path) -> io::Result<Vec<PanicDrift>> {
    let graph = build_call_graph(root)?;
    check_panics_graph(root, &graph)
}

/// [`check_panics`] over an already-built graph (so the CLI's full mode
/// builds the graph once for both semantic passes).
///
/// # Errors
///
/// Propagates I/O errors from the lock read.
pub fn check_panics_graph(root: &Path, graph: &CallGraph) -> io::Result<Vec<PanicDrift>> {
    let entries = panic_entries(graph);
    let lock_path = root.join(PANICS_LOCK);
    if !lock_path.is_file() {
        return Ok(vec![PanicDrift::MissingLock]);
    }
    let blessed: BTreeSet<String> = fs::read_to_string(&lock_path)?
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect();
    let computed: BTreeMap<&str, &PanicEntry> =
        entries.iter().map(|e| (e.id.as_str(), e)).collect();
    let mut drifts = Vec::new();
    for (id, entry) in &computed {
        if !blessed.contains(*id) {
            drifts.push(PanicDrift::Added((*entry).clone()));
        }
    }
    for id in &blessed {
        if !computed.contains_key(id.as_str()) {
            drifts.push(PanicDrift::Removed(id.clone()));
        }
    }
    Ok(drifts)
}

/// Regenerates `api/panics.lock` from the current sources; returns the lock
/// path.
///
/// # Errors
///
/// Propagates I/O errors from graph construction or the lock write.
pub fn bless_panics(root: &Path) -> io::Result<PathBuf> {
    let graph = build_call_graph(root)?;
    let entries = panic_entries(&graph);
    let lock_path = root.join(PANICS_LOCK);
    if let Some(parent) = lock_path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut out = String::from(
        "# Panic-reachability lock — `pub` functions that transitively reach a\n\
         # panic site (blessed output of `cargo run -p seeker-lint -- --bless-panics`).\n\
         # `--check-panics` fails when the computed set differs from this file.\n",
    );
    for entry in &entries {
        out.push_str(&entry.id);
        out.push('\n');
    }
    fs::write(&lock_path, out)?;
    Ok(lock_path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace(lib: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!(
            "seeker-lint-panics-{}-{}",
            std::process::id(),
            lib.len()
        ));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/alpha/src")).expect("mkdir");
        fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n")
            .expect("write");
        fs::write(
            root.join("crates/alpha/Cargo.toml"),
            "[package]\nname = \"alpha\"\nversion = \"0.0.0\"\n",
        )
        .expect("write");
        fs::write(root.join("crates/alpha/src/lib.rs"), lib).expect("write");
        root
    }

    #[test]
    fn transitive_panic_reaches_the_pub_entry() {
        let root = workspace(
            "//! A.\n#![deny(missing_docs)]\n\nfn deep(x: Option<u32>) -> u32 { x.unwrap() }\nfn middle(x: Option<u32>) -> u32 { deep(x) }\n\n/// E.\npub fn entry(x: Option<u32>) -> u32 { middle(x) }\n\n/// Safe.\npub fn safe() -> u32 { 7 }\n",
        );
        let graph = build_call_graph(&root).expect("graph");
        let entries = panic_entries(&graph);
        let ids: Vec<&str> = entries.iter().map(|e| e.id.as_str()).collect();
        assert_eq!(ids, vec!["alpha::entry"]);
        assert_eq!(entries[0].chain, vec!["alpha::entry", "alpha::middle", "alpha::deep"]);
        assert!(entries[0].site.contains("unwrap"), "site: {}", entries[0].site);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn allow_comment_stops_propagation() {
        let root = workspace(
            "//! A.\n#![deny(missing_docs)]\n\n// Caller guarantees non-empty input. lint:allow(panic-reach)\nfn checked(x: Option<u32>) -> u32 { x.unwrap() }\n\n/// E.\npub fn entry(x: Option<u32>) -> u32 { checked(x) }\n",
        );
        let graph = build_call_graph(&root).expect("graph");
        assert!(panic_entries(&graph).is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn bless_then_check_roundtrip_and_drift() {
        let root = workspace(
            "//! A.\n#![deny(missing_docs)]\n\n/// E.\npub fn entry(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        // Missing lock is drift.
        let drifts = check_panics(&root).expect("check");
        assert!(matches!(drifts.as_slice(), [PanicDrift::MissingLock]));
        // Bless → clean.
        bless_panics(&root).expect("bless");
        assert!(check_panics(&root).expect("check").is_empty());
        // New panic path → Added drift.
        let lib = root.join("crates/alpha/src/lib.rs");
        let mut source = fs::read_to_string(&lib).expect("read");
        source.push_str("\n/// F.\npub fn fresh(v: &[u32]) -> u32 { v[0] }\n");
        fs::write(&lib, source).expect("write");
        let drifts = check_panics(&root).expect("check");
        assert_eq!(drifts.len(), 1);
        assert!(matches!(&drifts[0], PanicDrift::Added(e) if e.id == "alpha::fresh"));
        // Re-bless, then fix the original panic → Removed drift.
        bless_panics(&root).expect("bless");
        let fixed = fs::read_to_string(&lib).expect("read").replace("x.unwrap()", "x.unwrap_or(0)");
        fs::write(&lib, fixed).expect("write");
        let drifts = check_panics(&root).expect("check");
        assert_eq!(drifts.len(), 1);
        assert!(matches!(&drifts[0], PanicDrift::Removed(id) if id == "alpha::entry"));
        let _ = fs::remove_dir_all(&root);
    }
}
