//! The individual lint rules and the per-file analysis driver.
//!
//! Since the v2 rewrite every rule runs on the lossless token stream from
//! [`crate::lexer`] instead of masked-line substring matching: an identifier
//! token is matched whole (`expect` can no longer collide with
//! `expect_err`), string/comment content is structurally invisible, and
//! multi-line constructs (a call split across lines by rustfmt) match the
//! same as single-line ones.

use crate::lexer::lex;
use crate::tokens::{TokenKind, TokenStream};

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// Identifier of a lint rule, usable in `// lint:allow(<rule>)` comments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `unwrap()`/`expect()`/`panic!`/`todo!`/`unimplemented!` in non-test
    /// library code.
    NoPanic,
    /// Unjustified `as <integer>` casts in feature/metric code.
    FloatCast,
    /// `==`/`!=` against a floating-point literal.
    FloatEq,
    /// Public item in a crate-root `lib.rs` without a doc comment.
    UndocumentedPub,
    /// Crate root missing its mandatory `#![deny(...)]` header.
    DenyHeader,
    /// Raw `std::thread::spawn`/`scope` in library code outside the
    /// sanctioned `seeker-par` pool.
    ThreadSpawn,
    /// Raw `println!`/`eprintln!` (and the non-`ln` forms) in library code
    /// outside the sanctioned `seeker-obs` sinks.
    NoPrint,
    /// `HashMap`/`HashSet` in library code: their iteration order is
    /// nondeterministic, which silently breaks the refinement loop's
    /// reproducibility contract (golden trajectory, serial==parallel).
    NoHashIter,
    /// `SystemTime`/`Instant::now` in library code outside `seeker-obs` and
    /// the bench harness: wall-clock-dependent branches make runs
    /// irreproducible.
    NoSystemTime,
    /// RNG construction without an explicit seed (`thread_rng`,
    /// `from_entropy`, `OsRng`, `rand::random`): every random draw in the
    /// pipeline must be replayable from a recorded seed.
    NoUnseededRng,
    /// Raw `std::env::var`/`var_os` in library code outside the
    /// `seeker_obs::env` registry: configuration is read once per process
    /// through the registry, never scattered per call site.
    EnvRead,
    /// Semantic (call-graph) rule: a `pub` function transitively reaches a
    /// panic site. Enforced by [`crate::panics`], not the lexical driver;
    /// listed here so `lint:allow(panic-reach)` parses.
    PanicReach,
    /// Semantic (call-graph) rule: an allocation inside a loop body on a
    /// declared hot path. Enforced by [`crate::hotpath`], not the lexical
    /// driver; listed here so `lint:allow(hot-alloc)` parses.
    HotAlloc,
    /// Manifest rule: a `[dependencies]` entry never mentioned in the
    /// crate's non-test sources. Enforced by [`crate::layers`], not the
    /// lexical driver; listed here so `lint:allow(unused-dep)` parses.
    UnusedDep,
    /// Semantic rule: an `unsafe` construct without a `SAFETY:` comment or
    /// out of sync with `api/unsafe.lock`. Enforced by
    /// [`crate::unsafe_audit`]; listed here so `lint:allow(unsafe-ledger)`
    /// parses.
    UnsafeLedger,
    /// Semantic (call-graph) rule: a lock-acquisition-order cycle, a
    /// condvar wait outside a predicate loop, or a lock held across a
    /// `par_map`-family dispatch. Enforced by [`crate::locks`]; listed here
    /// so `lint:allow(lock-order)` parses.
    LockOrder,
    /// Semantic rule: an atomic operation using `Ordering::Relaxed` without
    /// an adjacent `// ordering:` justification comment. Enforced by
    /// [`crate::atomics`]; listed here so `lint:allow(atomic-ordering)`
    /// parses.
    AtomicOrdering,
}

/// All lexical rules, in report order. The semantic rules
/// ([`Rule::PanicReach`], [`Rule::HotAlloc`], [`Rule::UnusedDep`]) are
/// driven by their own passes and deliberately absent.
pub const ALL_RULES: &[Rule] = &[
    Rule::NoPanic,
    Rule::FloatCast,
    Rule::FloatEq,
    Rule::UndocumentedPub,
    Rule::DenyHeader,
    Rule::ThreadSpawn,
    Rule::NoPrint,
    Rule::NoHashIter,
    Rule::NoSystemTime,
    Rule::NoUnseededRng,
    Rule::EnvRead,
];

impl Rule {
    /// The stable string id used in reports and allow comments.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::FloatCast => "float-cast",
            Rule::FloatEq => "float-eq",
            Rule::UndocumentedPub => "undocumented-pub",
            Rule::DenyHeader => "deny-header",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::NoPrint => "no-print",
            Rule::NoHashIter => "no-hash-iter",
            Rule::NoSystemTime => "no-system-time",
            Rule::NoUnseededRng => "no-unseeded-rng",
            Rule::EnvRead => "env-read",
            Rule::PanicReach => "panic-reach",
            Rule::HotAlloc => "hot-alloc",
            Rule::UnusedDep => "unused-dep",
            Rule::UnsafeLedger => "unsafe-ledger",
            Rule::LockOrder => "lock-order",
            Rule::AtomicOrdering => "atomic-ordering",
        }
    }

    /// Parses a rule id as written in an allow comment.
    #[must_use]
    pub fn from_id(id: &str) -> Option<Rule> {
        const SEMANTIC: &[Rule] = &[
            Rule::PanicReach,
            Rule::HotAlloc,
            Rule::UnusedDep,
            Rule::UnsafeLedger,
            Rule::LockOrder,
            Rule::AtomicOrdering,
        ];
        ALL_RULES.iter().chain(SEMANTIC).copied().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation at a specific source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// File the violation is in (as passed to the analysis).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule, self.message)
    }
}

/// How a file participates in the lint pass (derived from its path by
/// [`crate::walk`], or set explicitly in tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// `crates/*/src/lib.rs` or the workspace-root `src/lib.rs`.
    LibraryRoot,
    /// `crates/*/src/main.rs` or `crates/*/src/bin/*.rs`.
    BinaryRoot,
    /// Any other library source under a `src/` tree.
    Library,
    /// Test-only code: under `tests/`, or a file-level `#[cfg(test)]`
    /// module. Exempt from every rule.
    TestCode,
}

/// Tunable rule scoping.
#[derive(Debug, Clone)]
pub struct Config {
    /// Lints every crate root must `#![deny(...)]`.
    pub required_deny: Vec<String>,
    /// Additional lints required in experiment stub binaries
    /// (`crates/bench/src/bin/*.rs`).
    pub bench_bin_required_deny: Vec<String>,
    /// File-name suffixes marking feature/metric code where `float-cast`
    /// applies.
    pub float_cast_files: Vec<String>,
    /// Path prefixes exempt from `no-system-time` (the observability layer
    /// measures wall time by design; the bench harness times experiments).
    pub time_exempt_paths: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            required_deny: vec!["missing_docs".to_string()],
            bench_bin_required_deny: vec!["dead_code".to_string()],
            float_cast_files: vec!["features.rs".to_string(), "metrics.rs".to_string()],
            time_exempt_paths: vec!["crates/obs/".to_string(), "crates/bench/".to_string()],
        }
    }
}

const INT_TYPES: &[&str] =
    &["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

const ROUNDING_METHODS: &[&str] = &["round", "floor", "ceil", "trunc"];

const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint"];

/// RNG constructors that draw entropy from the environment instead of an
/// explicit seed. `StdRng::seed_from_u64(seed)` is the sanctioned pattern.
const UNSEEDED_RNG_FNS: &[&str] = &["thread_rng", "from_entropy", "from_os_rng"];

/// Analyzes one source file and returns its violations.
///
/// `path` is used for reporting and for path-scoped rules; `class` controls
/// which rules run.
#[must_use]
pub fn lint_source(path: &Path, class: FileClass, source: &str) -> Vec<Violation> {
    lint_source_with(path, class, source, &Config::default())
}

/// [`lint_source`] with an explicit configuration.
#[must_use]
pub fn lint_source_with(
    path: &Path,
    class: FileClass,
    source: &str,
    config: &Config,
) -> Vec<Violation> {
    if class == FileClass::TestCode {
        return Vec::new();
    }
    let stream = TokenStream::new(lex(source));
    let allows = collect_allows(&stream);
    let test_lines = test_region_lines(&stream);

    let mut out = Vec::new();
    let allowed = |rule: Rule, line: usize| -> bool {
        allows.iter().any(|(l, r)| *r == rule && (*l == line || *l + 1 == line))
    };
    let mut push = |rule: Rule, line: usize, message: String| {
        if !allowed(rule, line) && !test_lines.contains(&line) {
            out.push(Violation { file: path.to_path_buf(), line, rule, message });
        }
    };

    let is_library = matches!(class, FileClass::Library | FileClass::LibraryRoot);
    if is_library {
        no_panic(&stream, &mut push);
        thread_spawn(&stream, &mut push);
        no_print(&stream, &mut push);
        float_eq(&stream, &mut push);
        no_hash_iter(&stream, &mut push);
        no_unseeded_rng(&stream, &mut push);
        env_read(&stream, &mut push);
        if !is_time_exempt(path, config) {
            no_system_time(&stream, &mut push);
        }
    }
    if is_float_cast_scope(path, config) {
        float_cast(&stream, &mut push);
    }
    if class == FileClass::LibraryRoot {
        undocumented_pub(&stream, &test_lines, &mut push);
    }
    if matches!(class, FileClass::LibraryRoot | FileClass::BinaryRoot) {
        deny_header(path, &stream, config, &mut push);
    }
    out.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.id().cmp(b.rule.id())));
    out
}

/// Collects `(line, rule)` pairs from `// lint:allow(rule, …)` comments
/// (line or block); the allow applies to its own line and the next.
pub(crate) fn collect_allows(stream: &TokenStream<'_>) -> Vec<(usize, Rule)> {
    let mut allows = Vec::new();
    for token in stream.all() {
        if !matches!(token.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let Some(pos) = token.text.find("lint:allow(") else { continue };
        let rest = &token.text[pos + "lint:allow(".len()..];
        let Some(end) = rest.find(')') else { continue };
        for id in rest[..end].split(',') {
            if let Some(rule) = Rule::from_id(id.trim()) {
                allows.push((token.line, rule));
            }
        }
    }
    allows
}

/// Returns the set of 1-based line numbers inside `#[cfg(test)] mod … { }`
/// blocks (token-level brace matching).
pub(crate) fn test_region_lines(stream: &TokenStream<'_>) -> BTreeSet<usize> {
    let mut result = BTreeSet::new();
    let mut i = 0usize;
    while i < stream.code_len() {
        let Some(end_attr) = match_cfg_test_attr(stream, i) else {
            i += 1;
            continue;
        };
        // Scan forward for the attributed item's opening brace; a `;` first
        // means this is a module *declaration* (handled at the file level by
        // the walker), not an inline block.
        let start_line = stream.code(i).map_or(1, |t| t.line);
        let mut depth = 0usize;
        let mut opened = false;
        let mut j = end_attr;
        while let Some(t) = stream.code(j) {
            match t.text {
                "{" if t.kind == TokenKind::Punct => {
                    depth += 1;
                    opened = true;
                }
                "}" if t.kind == TokenKind::Punct => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        break;
                    }
                }
                ";" if !opened => break,
                _ => {}
            }
            j += 1;
        }
        let end_line =
            stream.code(j.min(stream.code_len().saturating_sub(1))).map_or(start_line, |t| t.line);
        for line in start_line..=end_line {
            result.insert(line);
        }
        i = j + 1;
    }
    result
}

/// If code position `i` starts a `#[cfg(…test…)]` attribute, returns the
/// code position just past its closing `]`.
fn match_cfg_test_attr(stream: &TokenStream<'_>, i: usize) -> Option<usize> {
    if !stream.code(i)?.is_punct("#") || !stream.code(i + 1)?.is_punct("[") {
        return None;
    }
    if !stream.code(i + 2)?.is_ident("cfg") {
        return None;
    }
    let mut depth = 1usize; // the `[`
    let mut saw_test = false;
    let mut j = i + 2;
    while let Some(t) = stream.code(j) {
        match t.text {
            "[" | "(" if t.kind == TokenKind::Punct => depth += 1,
            "]" | ")" if t.kind == TokenKind::Punct => {
                depth -= 1;
                if depth == 0 {
                    return if saw_test { Some(j + 1) } else { None };
                }
            }
            "test" if t.kind == TokenKind::Ident => saw_test = true,
            _ => {}
        }
        j += 1;
    }
    None
}

fn no_panic(stream: &TokenStream<'_>, push: &mut impl FnMut(Rule, usize, String)) {
    for (i, t) in stream.code_iter() {
        let next_is =
            |off: usize, text: &str| stream.code(i + off).is_some_and(|t| t.is_punct(text));
        let prev_dot = i > 0 && stream.code(i - 1).is_some_and(|t| t.is_punct("."));
        if t.kind != TokenKind::Ident {
            continue;
        }
        let what = match t.text {
            "unwrap" if prev_dot && next_is(1, "(") && next_is(2, ")") => "call to `unwrap()`",
            "expect" if prev_dot && next_is(1, "(") => "call to `expect()`",
            "panic" if next_is(1, "!") => "`panic!` invocation",
            "todo" if next_is(1, "!") => "`todo!` invocation",
            "unimplemented" if next_is(1, "!") => "`unimplemented!` invocation",
            _ => continue,
        };
        push(
            Rule::NoPanic,
            t.line,
            format!(
                "{what} in library code (return a typed error or add `// lint:allow(no-panic)`)"
            ),
        );
    }
}

fn thread_spawn(stream: &TokenStream<'_>, push: &mut impl FnMut(Rule, usize, String)) {
    for (i, t) in stream.code_iter() {
        if !t.is_ident("thread") || !stream.code(i + 1).is_some_and(|t| t.is_punct("::")) {
            continue;
        }
        let Some(method) = stream.code(i + 2) else { continue };
        if matches!(method.text, "spawn" | "scope")
            && method.kind == TokenKind::Ident
            && stream.code(i + 3).is_some_and(|t| t.is_punct("("))
        {
            push(
                Rule::ThreadSpawn,
                t.line,
                format!("raw `thread::{}` in library code (use the `seeker_par` pool, or add `// lint:allow(thread-spawn)` with a justification)", method.text),
            );
        }
    }
}

fn no_print(stream: &TokenStream<'_>, push: &mut impl FnMut(Rule, usize, String)) {
    for (i, t) in stream.code_iter() {
        if t.kind == TokenKind::Ident
            && PRINT_MACROS.contains(&t.text)
            && stream.code(i + 1).is_some_and(|t| t.is_punct("!"))
        {
            push(
                Rule::NoPrint,
                t.line,
                format!("raw `{}!` in library code (route through `seeker_obs::info!` / a sink, or add `// lint:allow(no-print)` with a justification)", t.text),
            );
        }
    }
}

fn float_eq(stream: &TokenStream<'_>, push: &mut impl FnMut(Rule, usize, String)) {
    for (i, t) in stream.code_iter() {
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let prev_float = i > 0 && stream.code(i - 1).is_some_and(|t| t.kind == TokenKind::Float);
        let next_float = match stream.code(i + 1) {
            Some(n) if n.kind == TokenKind::Float => true,
            Some(n) if n.is_punct("-") => {
                stream.code(i + 2).is_some_and(|t| t.kind == TokenKind::Float)
            }
            _ => false,
        };
        if prev_float || next_float {
            push(
                Rule::FloatEq,
                t.line,
                "`==`/`!=` against a floating-point literal (compare with an epsilon or add `// lint:allow(float-eq)`)".to_string(),
            );
        }
    }
}

fn float_cast(stream: &TokenStream<'_>, push: &mut impl FnMut(Rule, usize, String)) {
    for (i, t) in stream.code_iter() {
        if !t.is_ident("as") {
            continue;
        }
        let Some(ty) = stream.code(i + 1) else { continue };
        if ty.kind != TokenKind::Ident || !INT_TYPES.contains(&ty.text) {
            continue;
        }
        // Exempt `x.round() as usize`-style casts: the four tokens before
        // `as` are `. <rounding> ( )`.
        let rounded = i >= 4
            && stream.code(i - 1).is_some_and(|t| t.is_punct(")"))
            && stream.code(i - 2).is_some_and(|t| t.is_punct("("))
            && stream
                .code(i - 3)
                .is_some_and(|t| t.kind == TokenKind::Ident && ROUNDING_METHODS.contains(&t.text))
            && stream.code(i - 4).is_some_and(|t| t.is_punct("."));
        if !rounded {
            push(
                Rule::FloatCast,
                t.line,
                format!(
                    "`as {}` cast in feature/metric code without explicit rounding \
                     (use `.round()`/`.floor()`/`.ceil()` first, a checked conversion, \
                     or add `// lint:allow(float-cast)`)",
                    ty.text
                ),
            );
        }
    }
}

fn no_hash_iter(stream: &TokenStream<'_>, push: &mut impl FnMut(Rule, usize, String)) {
    for (_, t) in stream.code_iter() {
        if t.kind == TokenKind::Ident && matches!(t.text, "HashMap" | "HashSet") {
            push(
                Rule::NoHashIter,
                t.line,
                format!(
                    "`{}` in library code: hash iteration order is nondeterministic and breaks \
                     the reproducibility contract (use `BTreeMap`/`BTreeSet`, a sorted index, \
                     or add `// lint:allow(no-hash-iter)` justifying why it is never iterated)",
                    t.text
                ),
            );
        }
    }
}

/// Flags raw environment reads (`env::var`, `env::var_os`, and the
/// iterating `env::vars`/`vars_os` forms) in library code. Configuration is
/// read once per process through the `seeker_obs::env` registry; a
/// scattered read re-samples mutable process state per call and hides the
/// knob from `docs/CONFIGURATION.md`. A `use std::env::var;` alias would
/// evade the triple-token match, so the import form is flagged too.
fn env_read(stream: &TokenStream<'_>, push: &mut impl FnMut(Rule, usize, String)) {
    const READERS: &[&str] = &["var", "var_os", "vars", "vars_os"];
    for (i, t) in stream.code_iter() {
        if !t.is_ident("env") {
            continue;
        }
        let path_read = stream.code(i + 1).is_some_and(|u| u.is_punct("::"))
            && stream
                .code(i + 2)
                .is_some_and(|u| u.kind == TokenKind::Ident && READERS.contains(&u.text));
        if path_read {
            let what = stream.code(i + 2).map_or("var", |u| u.text);
            push(
                Rule::EnvRead,
                t.line,
                format!(
                    "raw `env::{what}` in library code: read configuration through the \
                     `seeker_obs::env` registry (cached once per process, spec-checked \
                     against docs/CONFIGURATION.md), or add `// lint:allow(env-read)`"
                ),
            );
        }
    }
}

fn no_system_time(stream: &TokenStream<'_>, push: &mut impl FnMut(Rule, usize, String)) {
    for (i, t) in stream.code_iter() {
        if t.is_ident("SystemTime") {
            push(
                Rule::NoSystemTime,
                t.line,
                "`SystemTime` in library code: wall-clock reads make runs irreproducible (thread a timestamp in, or add `// lint:allow(no-system-time)`)".to_string(),
            );
        } else if t.is_ident("Instant")
            && stream.code(i + 1).is_some_and(|t| t.is_punct("::"))
            && stream.code(i + 2).is_some_and(|t| t.is_ident("now"))
        {
            push(
                Rule::NoSystemTime,
                t.line,
                "`Instant::now` in library code outside `seeker-obs`: timing belongs in the observability layer (use a span, or add `// lint:allow(no-system-time)`)".to_string(),
            );
        }
    }
}

fn no_unseeded_rng(stream: &TokenStream<'_>, push: &mut impl FnMut(Rule, usize, String)) {
    for (i, t) in stream.code_iter() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if UNSEEDED_RNG_FNS.contains(&t.text) && stream.code(i + 1).is_some_and(|t| t.is_punct("("))
        {
            push(
                Rule::NoUnseededRng,
                t.line,
                format!("`{}()` constructs an unseeded RNG: every draw must replay from a recorded seed (use `StdRng::seed_from_u64`, or add `// lint:allow(no-unseeded-rng)`)", t.text),
            );
        } else if t.text == "OsRng" {
            push(
                Rule::NoUnseededRng,
                t.line,
                "`OsRng` draws OS entropy: every draw must replay from a recorded seed (use `StdRng::seed_from_u64`, or add `// lint:allow(no-unseeded-rng)`)".to_string(),
            );
        } else if t.text == "random"
            && i > 0
            && stream.code(i - 1).is_some_and(|t| t.is_punct("::"))
            && stream.code(i.wrapping_sub(2)).is_some_and(|t| t.is_ident("rand"))
        {
            push(
                Rule::NoUnseededRng,
                t.line,
                "`rand::random` is thread-RNG sugar: every draw must replay from a recorded seed (use `StdRng::seed_from_u64`, or add `// lint:allow(no-unseeded-rng)`)".to_string(),
            );
        }
    }
}

/// Item keywords that can follow `pub` at the top level of a crate root.
const PUB_ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "use", "mod", "type", "const", "static", "unsafe", "async",
    "extern", "union", "macro",
];

fn undocumented_pub(
    stream: &TokenStream<'_>,
    test_lines: &BTreeSet<usize>,
    push: &mut impl FnMut(Rule, usize, String),
) {
    let mut depth = 0usize;
    for (i, t) in stream.code_iter() {
        if t.kind == TokenKind::Punct {
            match t.text {
                "{" => depth += 1,
                "}" => depth = depth.saturating_sub(1),
                _ => {}
            }
            continue;
        }
        if depth != 0 || !t.is_ident("pub") || test_lines.contains(&t.line) {
            continue;
        }
        let Some(next) = stream.code(i + 1) else { continue };
        // `pub(crate)` / `pub(super)` visibility is not public API.
        if next.is_punct("(") {
            continue;
        }
        if !(next.kind == TokenKind::Ident && PUB_ITEM_KEYWORDS.contains(&next.text)) {
            continue;
        }
        if !has_doc_before(stream, i) {
            let item = item_signature_preview(stream, i);
            push(
                Rule::UndocumentedPub,
                t.line,
                format!("public item `{item}` in crate root has no doc comment"),
            );
        }
    }
}

/// Whether the item whose first code token is at code position `i` is
/// preceded by a doc comment (walking back over attributes).
fn has_doc_before(stream: &TokenStream<'_>, i: usize) -> bool {
    // Work on the full (lossless) token list so comments are visible.
    let Some(full_idx) = stream.code_index(i) else { return false };
    let all = stream.all();
    let mut j = full_idx;
    while j > 0 {
        j -= 1;
        let t = &all[j];
        match t.kind {
            TokenKind::Whitespace => continue,
            TokenKind::LineComment => {
                if t.text.starts_with("///") {
                    return true;
                }
                // An ordinary comment between doc and item: keep walking.
                continue;
            }
            TokenKind::BlockComment => {
                if t.text.starts_with("/**") {
                    return true;
                }
                continue;
            }
            _ => {}
        }
        // Attribute: tokens `… ]` — walk back to the matching `#[` and
        // check for `#[doc…]`.
        if t.is_punct("]") {
            let mut depth = 1usize;
            let mut saw_doc = false;
            while j > 0 && depth > 0 {
                j -= 1;
                let u = &all[j];
                if u.is_punct("]") {
                    depth += 1;
                } else if u.is_punct("[") {
                    depth -= 1;
                } else if u.is_ident("doc") {
                    saw_doc = true;
                }
            }
            // Skip the `#` (and a possible `!`) introducing the attribute.
            while j > 0 && (all[j - 1].is_punct("#") || all[j - 1].is_punct("!")) {
                j -= 1;
            }
            if saw_doc {
                return true;
            }
            continue;
        }
        return false;
    }
    false
}

/// A short preview of the item starting at code position `i` (up to the
/// body/terminator), for violation messages.
fn item_signature_preview(stream: &TokenStream<'_>, i: usize) -> String {
    let mut parts = Vec::new();
    let mut j = i;
    while let Some(t) = stream.code(j) {
        if (t.is_punct("{") || t.is_punct(";") || t.is_punct("=")) && j > i {
            break;
        }
        parts.push(t.text);
        if parts.len() >= 12 {
            break;
        }
        j += 1;
    }
    parts.join(" ")
}

fn deny_header(
    path: &Path,
    stream: &TokenStream<'_>,
    config: &Config,
    push: &mut impl FnMut(Rule, usize, String),
) {
    // Collect every lint named in an inner `#![deny(...)]` / `#![forbid(...)]`.
    let mut denied: Vec<&str> = Vec::new();
    for (i, t) in stream.code_iter() {
        if !t.is_punct("#")
            || !stream.code(i + 1).is_some_and(|t| t.is_punct("!"))
            || !stream.code(i + 2).is_some_and(|t| t.is_punct("["))
        {
            continue;
        }
        let Some(head) = stream.code(i + 3) else { continue };
        if !(head.is_ident("deny") || head.is_ident("forbid")) {
            continue;
        }
        let mut j = i + 4;
        while let Some(u) = stream.code(j) {
            if u.is_punct("]") {
                break;
            }
            if u.kind == TokenKind::Ident {
                denied.push(u.text);
            }
            j += 1;
        }
    }
    let path_str = path.to_string_lossy().replace('\\', "/");
    let mut required: Vec<&String> = config.required_deny.iter().collect();
    if path_str.contains("crates/bench/src/bin/") {
        required.extend(config.bench_bin_required_deny.iter());
    }
    for need in required {
        if !denied.iter().any(|d| d == need) {
            push(
                Rule::DenyHeader,
                1,
                format!("crate root is missing the mandatory `#![deny({need})]` header"),
            );
        }
    }
}

/// Whether `path` is feature/metric code in scope for `float-cast`.
fn is_float_cast_scope(path: &Path, config: &Config) -> bool {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    config.float_cast_files.iter().any(|f| name == f)
}

/// Whether `path` is under a `no-system-time` exempt prefix.
fn is_time_exempt(path: &Path, config: &Config) -> bool {
    let path_str = path.to_string_lossy().replace('\\', "/");
    config.time_exempt_paths.iter().any(|p| path_str.starts_with(p.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(class: FileClass, src: &str) -> Vec<Violation> {
        lint_source(Path::new("crates/x/src/code.rs"), class, src)
    }

    fn rules_of(v: &[Violation]) -> Vec<Rule> {
        v.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn flags_panic_constructs_in_library_code() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\nfn g() { panic!(\"boom\") }\nfn h() { todo!() }\n";
        let v = lint(FileClass::Library, src);
        assert_eq!(rules_of(&v), vec![Rule::NoPanic, Rule::NoPanic, Rule::NoPanic]);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn expect_matches_only_the_panicking_method() {
        let v = lint(FileClass::Library, "fn f(r: Result<u8, u8>) { r.expect_err(\"e\"); }\n");
        assert!(v.is_empty());
        let v = lint(FileClass::Library, "fn f(r: Result<u8, u8>) { r.expect(\"e\"); }\n");
        assert_eq!(rules_of(&v), vec![Rule::NoPanic]);
    }

    #[test]
    fn multiline_calls_match_like_single_line_ones() {
        // rustfmt can split `.unwrap()` across lines; the token matcher does
        // not care (the old line matcher missed this).
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap(\n    )\n}\n";
        let v = lint(FileClass::Library, src);
        assert_eq!(rules_of(&v), vec![Rule::NoPanic]);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(3).min(x.unwrap_or_default()) }\n";
        assert!(lint(FileClass::Library, src).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_on_same_or_next_line() {
        let same = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(no-panic)\n";
        assert!(lint(FileClass::Library, same).is_empty());
        let above = "// lint:allow(no-panic)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint(FileClass::Library, above).is_empty());
        let wrong_rule = "// lint:allow(float-eq)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(lint(FileClass::Library, wrong_rule).len(), 1);
    }

    #[test]
    fn panics_in_strings_and_comments_are_ignored() {
        let src = "// this mentions panic!(\"x\") and .unwrap()\nfn f() -> &'static str { \"panic!(no) .unwrap()\" }\n";
        assert!(lint(FileClass::Library, src).is_empty());
        let raw = "fn f() -> &'static str { r#\"panic!(\"inner\") .unwrap()\"# }\n";
        assert!(lint(FileClass::Library, raw).is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); assert!(1.0 == 1.0); }\n}\n";
        assert!(lint(FileClass::Library, src).is_empty());
    }

    #[test]
    fn code_after_cfg_test_block_is_still_linted() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\nfn late(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let v = lint(FileClass::Library, src);
        assert_eq!(rules_of(&v), vec![Rule::NoPanic]);
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn float_eq_flags_literal_comparisons() {
        let v = lint(FileClass::Library, "fn f(x: f64) -> bool { x == 0.0 }\n");
        assert_eq!(rules_of(&v), vec![Rule::FloatEq]);
        let v = lint(FileClass::Library, "fn f(x: f32) -> bool { 1.5f32 != x }\n");
        assert_eq!(rules_of(&v), vec![Rule::FloatEq]);
        let v = lint(FileClass::Library, "fn f(x: f64) -> bool { x == -2.5 }\n");
        assert_eq!(rules_of(&v), vec![Rule::FloatEq]);
    }

    #[test]
    fn float_eq_ignores_integers_ranges_and_order_comparisons() {
        assert!(lint(FileClass::Library, "fn f(x: u32) -> bool { x == 10 }\n").is_empty());
        assert!(
            lint(FileClass::Library, "fn f(x: f64) -> bool { x <= 1.0 && x >= 0.0 }\n").is_empty()
        );
        assert!(
            lint(FileClass::Library, "fn f(v: &[u8]) -> bool { v[1..4] == v[0..3] }\n").is_empty()
        );
    }

    #[test]
    fn float_cast_scoped_to_feature_and_metric_files() {
        let src = "fn f(x: f64) -> usize { x as usize }\n";
        let in_scope =
            lint_source(Path::new("crates/core/src/features.rs"), FileClass::Library, src);
        assert_eq!(rules_of(&in_scope), vec![Rule::FloatCast]);
        let out_of_scope =
            lint_source(Path::new("crates/core/src/attack.rs"), FileClass::Library, src);
        assert!(out_of_scope.is_empty());
    }

    #[test]
    fn float_cast_accepts_explicit_rounding() {
        let src = "fn f(x: f64) -> usize { x.round() as usize }\nfn g(x: f64) -> u32 { x.floor() as u32 }\n";
        let v = lint_source(Path::new("crates/ml/src/metrics.rs"), FileClass::Library, src);
        assert!(v.is_empty());
    }

    #[test]
    fn undocumented_pub_in_crate_root() {
        let src = "//! Crate docs.\n#![deny(missing_docs)]\n\n/// Documented.\npub fn ok() {}\n\npub fn bad() {}\n\n/// Re-export.\npub use std::fmt;\n\npub use std::io;\n";
        let v = lint(FileClass::LibraryRoot, src);
        assert_eq!(rules_of(&v), vec![Rule::UndocumentedPub, Rule::UndocumentedPub]);
        assert_eq!(v[0].line, 7);
        assert_eq!(v[1].line, 12);
    }

    #[test]
    fn doc_comment_above_attributes_counts() {
        let src = "//! Crate docs.\n#![deny(missing_docs)]\n\n/// Documented.\n#[derive(Debug, Clone)]\npub struct S;\n";
        assert!(lint(FileClass::LibraryRoot, src).is_empty());
        let multi = "//! Docs.\n#![deny(missing_docs)]\n\n/// Documented.\n#[derive(\n    Debug,\n    Clone,\n)]\npub struct S;\n";
        assert!(lint(FileClass::LibraryRoot, multi).is_empty());
    }

    #[test]
    fn pub_crate_items_are_not_public_api() {
        let src = "//! Docs.\n#![deny(missing_docs)]\npub(crate) fn helper() {}\n";
        assert!(lint(FileClass::LibraryRoot, src).is_empty());
    }

    #[test]
    fn deny_header_required_in_crate_roots() {
        let v = lint(FileClass::LibraryRoot, "//! Docs.\n");
        assert_eq!(rules_of(&v), vec![Rule::DenyHeader]);
        let ok = lint(FileClass::LibraryRoot, "//! Docs.\n#![deny(missing_docs)]\n");
        assert!(ok.is_empty());
        let forbid = lint(FileClass::LibraryRoot, "//! Docs.\n#![forbid(missing_docs)]\n");
        assert!(forbid.is_empty());
        let combined =
            lint(FileClass::LibraryRoot, "//! Docs.\n#![deny(dead_code, missing_docs)]\n");
        assert!(combined.is_empty());
    }

    #[test]
    fn bench_bins_also_need_dead_code_denied() {
        let path = Path::new("crates/bench/src/bin/fig1.rs");
        let missing = lint_source(
            path,
            FileClass::BinaryRoot,
            "//! Fig 1.\n#![deny(missing_docs)]\nfn main() {}\n",
        );
        assert_eq!(rules_of(&missing), vec![Rule::DenyHeader]);
        let ok = lint_source(
            path,
            FileClass::BinaryRoot,
            "//! Fig 1.\n#![deny(missing_docs, dead_code)]\nfn main() {}\n",
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn thread_spawn_flagged_in_library_code_only() {
        let spawn = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(rules_of(&lint(FileClass::Library, spawn)), vec![Rule::ThreadSpawn]);
        let scope = "fn f() { std::thread::scope(|s| { let _ = s; }); }\n";
        assert_eq!(rules_of(&lint(FileClass::Library, scope)), vec![Rule::ThreadSpawn]);
        let allowed =
            "fn f() {\n    // lint:allow(thread-spawn) -- sanctioned pool\n    std::thread::scope(|s| { let _ = s; });\n}\n";
        assert!(lint(FileClass::Library, allowed).is_empty());
        assert!(!rules_of(&lint(FileClass::BinaryRoot, spawn)).contains(&Rule::ThreadSpawn));
    }

    #[test]
    fn print_macros_flagged_in_library_code_only() {
        let src = "fn f() { println!(\"x\"); }\nfn g() { eprintln!(\"y\"); }\n";
        let v = lint(FileClass::Library, src);
        assert_eq!(rules_of(&v), vec![Rule::NoPrint, Rule::NoPrint]);
        assert!(v[0].message.contains("println!"));
        assert!(v[1].message.contains("eprintln!"));
        let eprint = lint(FileClass::Library, "fn f() { eprint!(\"z\"); }\n");
        assert!(eprint[0].message.contains("`eprint!`"));
        assert!(!rules_of(&lint(FileClass::BinaryRoot, src)).contains(&Rule::NoPrint));
        let allowed =
            "fn f() {\n    // lint:allow(no-print) -- sink output\n    eprintln!(\"e\");\n}\n";
        assert!(lint(FileClass::Library, allowed).is_empty());
        let masked = "// println!(\"doc\")\nfn f() -> &'static str { \"println!(no)\" }\n";
        assert!(lint(FileClass::Library, masked).is_empty());
    }

    #[test]
    fn hash_containers_flagged_in_library_code() {
        let src =
            "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) -> usize { m.len() }\n";
        let v = lint(FileClass::Library, src);
        assert_eq!(rules_of(&v), vec![Rule::NoHashIter, Rule::NoHashIter]);
        let set = "fn f(s: &std::collections::HashSet<u32>) -> usize { s.len() }\n";
        assert_eq!(rules_of(&lint(FileClass::Library, set)), vec![Rule::NoHashIter]);
        // BTree containers are the sanctioned replacement.
        let btree =
            "use std::collections::BTreeMap;\nfn f(m: &BTreeMap<u32, u32>) -> usize { m.len() }\n";
        assert!(lint(FileClass::Library, btree).is_empty());
        // A justified allow sanctions a lookup-only map.
        let allowed = "// lint:allow(no-hash-iter) -- lookup-only, never iterated\nuse std::collections::HashMap;\n";
        assert!(lint(FileClass::Library, allowed).is_empty());
        // Mentions in comments/strings are invisible.
        let comment = "// HashMap would be wrong here\nfn f() {}\n";
        assert!(lint(FileClass::Library, comment).is_empty());
    }

    #[test]
    fn system_time_flagged_outside_exempt_paths() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); let _ = t; }\n";
        let v = lint(FileClass::Library, src);
        assert_eq!(rules_of(&v), vec![Rule::NoSystemTime]);
        assert_eq!(v[0].line, 2);
        let st = "fn f() -> std::time::SystemTime { std::time::SystemTime::now() }\n";
        assert_eq!(
            rules_of(&lint(FileClass::Library, st)),
            vec![Rule::NoSystemTime, Rule::NoSystemTime]
        );
        // The observability layer is exempt by path.
        let obs = lint_source(Path::new("crates/obs/src/lib.rs"), FileClass::Library, src);
        assert!(obs.is_empty());
        let bench = lint_source(Path::new("crates/bench/src/harness.rs"), FileClass::Library, src);
        assert!(bench.is_empty());
        // `Instant` mentioned without `::now` (e.g. a struct field type) is fine.
        let field = "struct S { start: std::time::Instant }\n";
        assert!(lint(FileClass::Library, field).is_empty());
    }

    #[test]
    fn unseeded_rng_construction_flagged() {
        let v = lint(
            FileClass::Library,
            "fn f() { let mut rng = rand::thread_rng(); let _ = &mut rng; }\n",
        );
        assert_eq!(rules_of(&v), vec![Rule::NoUnseededRng]);
        let v =
            lint(FileClass::Library, "fn f() { let rng = StdRng::from_entropy(); let _ = rng; }\n");
        assert_eq!(rules_of(&v), vec![Rule::NoUnseededRng]);
        let v = lint(FileClass::Library, "fn f() -> f64 { rand::random() }\n");
        assert_eq!(rules_of(&v), vec![Rule::NoUnseededRng]);
        let v = lint(FileClass::Library, "fn f() { let rng = OsRng; let _ = rng; }\n");
        assert_eq!(rules_of(&v), vec![Rule::NoUnseededRng]);
        // The sanctioned seeded construction passes.
        let seeded = "fn f(seed: u64) { let rng = StdRng::seed_from_u64(seed); let _ = rng; }\n";
        assert!(lint(FileClass::Library, seeded).is_empty());
        // A method merely named `random` on some struct is not flagged.
        let method = "fn f(x: &Sampler) -> f64 { x.random() }\n";
        assert!(lint(FileClass::Library, method).is_empty());
    }

    #[test]
    fn test_code_is_fully_exempt() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint(FileClass::TestCode, src).is_empty());
    }
}
