//! The individual lint rules and the per-file analysis driver.

use crate::mask::mask_source;

use std::fmt;
use std::path::{Path, PathBuf};

/// Identifier of a lint rule, usable in `// lint:allow(<rule>)` comments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `unwrap()`/`expect()`/`panic!`/`todo!`/`unimplemented!` in non-test
    /// library code.
    NoPanic,
    /// Unjustified `as <integer>` casts in feature/metric code.
    FloatCast,
    /// `==`/`!=` against a floating-point literal.
    FloatEq,
    /// Public item in a crate-root `lib.rs` without a doc comment.
    UndocumentedPub,
    /// Crate root missing its mandatory `#![deny(...)]` header.
    DenyHeader,
    /// Raw `std::thread::spawn`/`scope` in library code outside the
    /// sanctioned `seeker-par` pool.
    ThreadSpawn,
    /// Raw `println!`/`eprintln!` (and the non-`ln` forms) in library code
    /// outside the sanctioned `seeker-obs` sinks.
    NoPrint,
}

impl Rule {
    /// The stable string id used in reports and allow comments.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::FloatCast => "float-cast",
            Rule::FloatEq => "float-eq",
            Rule::UndocumentedPub => "undocumented-pub",
            Rule::DenyHeader => "deny-header",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::NoPrint => "no-print",
        }
    }

    /// Parses a rule id as written in an allow comment.
    #[must_use]
    pub fn from_id(id: &str) -> Option<Rule> {
        match id {
            "no-panic" => Some(Rule::NoPanic),
            "float-cast" => Some(Rule::FloatCast),
            "float-eq" => Some(Rule::FloatEq),
            "undocumented-pub" => Some(Rule::UndocumentedPub),
            "deny-header" => Some(Rule::DenyHeader),
            "thread-spawn" => Some(Rule::ThreadSpawn),
            "no-print" => Some(Rule::NoPrint),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation at a specific source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// File the violation is in (as passed to the analysis).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule, self.message)
    }
}

/// How a file participates in the lint pass (derived from its path by
/// [`crate::walk`], or set explicitly in tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// `crates/*/src/lib.rs` or the workspace-root `src/lib.rs`.
    LibraryRoot,
    /// `crates/*/src/main.rs` or `crates/*/src/bin/*.rs`.
    BinaryRoot,
    /// Any other library source under a `src/` tree.
    Library,
    /// Test-only code: under `tests/`, or a file-level `#[cfg(test)]`
    /// module. Exempt from every rule.
    TestCode,
}

/// Tunable rule scoping.
#[derive(Debug, Clone)]
pub struct Config {
    /// Lints every crate root must `#![deny(...)]`.
    pub required_deny: Vec<String>,
    /// Additional lints required in experiment stub binaries
    /// (`crates/bench/src/bin/*.rs`).
    pub bench_bin_required_deny: Vec<String>,
    /// File-name suffixes marking feature/metric code where `float-cast`
    /// applies.
    pub float_cast_files: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            required_deny: vec!["missing_docs".to_string()],
            bench_bin_required_deny: vec!["dead_code".to_string()],
            float_cast_files: vec!["features.rs".to_string(), "metrics.rs".to_string()],
        }
    }
}

const PANIC_PATTERNS: &[(&str, &str)] = &[
    (".unwrap()", "call to `unwrap()`"),
    (".expect(", "call to `expect()`"),
    ("panic!(", "`panic!` invocation"),
    ("todo!(", "`todo!` invocation"),
    ("unimplemented!(", "`unimplemented!` invocation"),
];

const INT_TYPES: &[&str] =
    &["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

const ROUNDING_SUFFIXES: &[&str] = &[".round()", ".floor()", ".ceil()", ".trunc()"];

/// Ad-hoc threading in library code bypasses the determinism contract the
/// `seeker-par` pool guarantees (order-preserving chunked reassembly, worker
/// count from one knob). Matches both the free function and scoped form.
const THREAD_PATTERNS: &[(&str, &str)] =
    &[("thread::spawn(", "raw `thread::spawn`"), ("thread::scope(", "raw `thread::scope`")];

/// Ad-hoc printing in library code bypasses the `seeker-obs` sinks, so
/// `SEEKER_LOG=off` cannot silence it and test output cannot capture it.
/// Binaries own their stdio and are exempt; the sanctioned sites inside
/// the `seeker-obs` sinks carry `// lint:allow(no-print)` comments.
const PRINT_PATTERNS: &[(&str, &str)] = &[
    // Longest first: `print!(` is a substring of every other pattern, so
    // the first match (the loop breaks after it) must be the precise one.
    ("eprintln!(", "raw `eprintln!`"),
    ("println!(", "raw `println!`"),
    ("eprint!(", "raw `eprint!`"),
    ("print!(", "raw `print!`"),
];

/// Analyzes one source file and returns its violations.
///
/// `path` is used for reporting and for path-scoped rules; `class` controls
/// which rules run.
#[must_use]
pub fn lint_source(path: &Path, class: FileClass, source: &str) -> Vec<Violation> {
    lint_source_with(path, class, source, &Config::default())
}

/// [`lint_source`] with an explicit configuration.
#[must_use]
pub fn lint_source_with(
    path: &Path,
    class: FileClass,
    source: &str,
    config: &Config,
) -> Vec<Violation> {
    if class == FileClass::TestCode {
        return Vec::new();
    }
    let masked = mask_source(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let masked_lines: Vec<&str> = masked.lines().collect();
    let allows = collect_allows(&raw_lines);
    let test_lines = test_region_lines(&masked_lines);

    let mut out = Vec::new();
    let allowed = |rule: Rule, line_idx: usize| -> bool {
        allows.iter().any(|(l, r)| *r == rule && (*l == line_idx || *l + 1 == line_idx))
    };
    let mut push = |rule: Rule, line_idx: usize, message: String| {
        if !allowed(rule, line_idx) {
            out.push(Violation { file: path.to_path_buf(), line: line_idx + 1, rule, message });
        }
    };

    let is_library = matches!(class, FileClass::Library | FileClass::LibraryRoot);

    for (idx, line) in masked_lines.iter().enumerate() {
        if test_lines.contains(&idx) {
            continue;
        }
        if is_library {
            for (pat, what) in PANIC_PATTERNS {
                if line.contains(pat) {
                    push(Rule::NoPanic, idx, format!("{what} in library code (return a typed error or add `// lint:allow(no-panic)`)"));
                }
            }
            for (pat, what) in THREAD_PATTERNS {
                if line.contains(pat) {
                    push(Rule::ThreadSpawn, idx, format!("{what} in library code (use the `seeker_par` pool, or add `// lint:allow(thread-spawn)` with a justification)"));
                }
            }
            for (pat, what) in PRINT_PATTERNS {
                if line.contains(pat) {
                    push(Rule::NoPrint, idx, format!("{what} in library code (route through `seeker_obs::info!` / a sink, or add `// lint:allow(no-print)` with a justification)"));
                    break;
                }
            }
            for (col, len) in float_eq_sites(line) {
                let _ = (col, len);
                push(Rule::FloatEq, idx, "`==`/`!=` against a floating-point literal (compare with an epsilon or add `// lint:allow(float-eq)`)".to_string());
            }
        }
        if is_float_cast_scope(path, config) {
            for msg in float_cast_sites(line) {
                push(Rule::FloatCast, idx, msg);
            }
        }
    }

    if class == FileClass::LibraryRoot {
        undocumented_pub(&raw_lines, &masked_lines, &test_lines, &mut push);
    }
    if matches!(class, FileClass::LibraryRoot | FileClass::BinaryRoot) {
        deny_header(path, &masked_lines, config, &mut push);
    }
    out
}

/// Collects `(line, rule)` pairs from `// lint:allow(rule, …)` comments.
fn collect_allows(raw_lines: &[&str]) -> Vec<(usize, Rule)> {
    let mut allows = Vec::new();
    for (idx, line) in raw_lines.iter().enumerate() {
        let Some(pos) = line.find("lint:allow(") else { continue };
        let rest = &line[pos + "lint:allow(".len()..];
        let Some(end) = rest.find(')') else { continue };
        for id in rest[..end].split(',') {
            if let Some(rule) = Rule::from_id(id.trim()) {
                allows.push((idx, rule));
            }
        }
    }
    allows
}

/// Returns the set of 0-based line indices inside `#[cfg(test)] mod … { }`
/// blocks (computed on masked text via brace matching).
fn test_region_lines(masked_lines: &[&str]) -> std::collections::BTreeSet<usize> {
    let mut result = std::collections::BTreeSet::new();
    let mut idx = 0usize;
    while idx < masked_lines.len() {
        let line = masked_lines[idx].trim_start();
        if !(line.starts_with("#[cfg(") && line.contains("test")) {
            idx += 1;
            continue;
        }
        // Scan forward for the item's opening brace; a `;` first means this
        // is a module *declaration* (handled at the file level by the
        // walker), not an inline block.
        let mut depth = 0usize;
        let mut opened = false;
        let start = idx;
        let mut j = idx + 1;
        'scan: while j < masked_lines.len() {
            for b in masked_lines[j].bytes() {
                match b {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            break 'scan;
                        }
                    }
                    b';' if !opened => break 'scan,
                    _ => {}
                }
            }
            j += 1;
        }
        if opened {
            for l in start..=j.min(masked_lines.len() - 1) {
                result.insert(l);
            }
        }
        idx = j + 1;
    }
    result
}

/// Finds `==`/`!=` operators with a float literal on either side.
fn float_eq_sites(masked_line: &str) -> Vec<(usize, usize)> {
    let bytes = masked_line.as_bytes();
    let mut sites = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let two = &bytes[i..i + 2];
        let is_op = two == b"==" || two == b"!=";
        if !is_op {
            i += 1;
            continue;
        }
        // Exclude <=, >=, ===-like runs and pattern `=>`.
        let before_ok = i == 0 || !matches!(bytes[i - 1], b'<' | b'>' | b'=' | b'!');
        let after_ok = i + 2 >= bytes.len() || bytes[i + 2] != b'=';
        if before_ok && after_ok {
            let lhs = &masked_line[..i];
            let rhs = &masked_line[i + 2..];
            if trailing_token_is_float(lhs) || leading_token_is_float(rhs) {
                sites.push((i, 2));
            }
        }
        i += 2;
    }
    sites
}

/// Whether the token ending `s` is a float literal like `1.0` or `-3.5f64`.
fn trailing_token_is_float(s: &str) -> bool {
    let t = s.trim_end();
    let bytes = t.as_bytes();
    let mut end = bytes.len();
    // Strip an f32/f64 suffix.
    for suffix in ["f32", "f64"] {
        if t.ends_with(suffix) {
            end -= suffix.len();
            break;
        }
    }
    let digits_end = end;
    let mut i = digits_end;
    while i > 0 && bytes[i - 1].is_ascii_digit() {
        i -= 1;
    }
    let frac_digits = digits_end - i;
    if i == 0 || bytes[i - 1] != b'.' {
        return false;
    }
    // Reject method calls / ranges: require at least the `.` plus digits on
    // the left too (e.g. `1.` or `13.5`).
    if frac_digits == 0 && end != bytes.len() {
        return false;
    }
    let mut j = i - 1;
    while j > 0 && bytes[j - 1].is_ascii_digit() {
        j -= 1;
    }
    j < i - 1
}

/// Whether the token starting `s` is a float literal.
fn leading_token_is_float(s: &str) -> bool {
    let t = s.trim_start().trim_start_matches('-');
    let bytes = t.as_bytes();
    let mut i = 0;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i == 0 || i >= bytes.len() || bytes[i] != b'.' {
        return false;
    }
    // `1..4` is a range, not a float.
    !(i + 1 < bytes.len() && bytes[i + 1] == b'.')
}

/// Whether `path` is feature/metric code in scope for `float-cast`.
fn is_float_cast_scope(path: &Path, config: &Config) -> bool {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    config.float_cast_files.iter().any(|f| name == f)
}

/// Finds `as <integer>` casts not justified by an explicit rounding call.
fn float_cast_sites(masked_line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut search_from = 0;
    while let Some(rel) = masked_line[search_from..].find(" as ") {
        let pos = search_from + rel;
        search_from = pos + 4;
        let after = &masked_line[pos + 4..];
        let ty: String =
            after.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
        if !INT_TYPES.contains(&ty.as_str()) {
            continue;
        }
        let before = masked_line[..pos].trim_end();
        if ROUNDING_SUFFIXES.iter().any(|s| before.ends_with(s)) {
            continue;
        }
        out.push(format!(
            "`as {ty}` cast in feature/metric code without explicit rounding \
             (use `.round()`/`.floor()`/`.ceil()` first, a checked conversion, \
             or add `// lint:allow(float-cast)`)"
        ));
    }
    out
}

/// Requires a doc comment on every top-level `pub` item (including
/// re-exports) in a crate-root `lib.rs`.
fn undocumented_pub(
    raw_lines: &[&str],
    masked_lines: &[&str],
    test_lines: &std::collections::BTreeSet<usize>,
    push: &mut impl FnMut(Rule, usize, String),
) {
    const ITEMS: &[&str] = &[
        "pub fn ",
        "pub struct ",
        "pub enum ",
        "pub trait ",
        "pub use ",
        "pub mod ",
        "pub type ",
        "pub const ",
        "pub static ",
        "pub unsafe ",
    ];
    for (idx, line) in masked_lines.iter().enumerate() {
        if test_lines.contains(&idx) {
            continue;
        }
        if !ITEMS.iter().any(|p| line.starts_with(p)) {
            continue;
        }
        // Walk upward over attributes and attribute continuation lines.
        let mut j = idx;
        let mut documented = false;
        while j > 0 {
            j -= 1;
            let above = raw_lines[j].trim_start();
            if above.starts_with("///") || above.starts_with("#[doc") || above.starts_with("#![doc")
            {
                documented = true;
                break;
            }
            // Skip attribute lines (single- or multi-line) between the doc
            // comment and the item.
            if above.starts_with("#[") || above.ends_with(']') || above.ends_with("]ated") {
                continue;
            }
            break;
        }
        if !documented {
            let item = masked_lines[idx].split('{').next().unwrap_or("").trim();
            push(
                Rule::UndocumentedPub,
                idx,
                format!("public item `{item}` in crate root has no doc comment"),
            );
        }
    }
}

/// Requires the mandatory `#![deny(...)]` header in crate roots.
fn deny_header(
    path: &Path,
    masked_lines: &[&str],
    config: &Config,
    push: &mut impl FnMut(Rule, usize, String),
) {
    let mut denied: Vec<String> = Vec::new();
    for line in masked_lines {
        let t = line.trim_start();
        for prefix in ["#![deny(", "#![forbid("] {
            if let Some(rest) = t.strip_prefix(prefix) {
                if let Some(end) = rest.find(")]") {
                    denied.extend(rest[..end].split(',').map(|s| s.trim().to_string()));
                }
            }
        }
    }
    let path_str = path.to_string_lossy().replace('\\', "/");
    let mut required: Vec<&String> = config.required_deny.iter().collect();
    if path_str.contains("crates/bench/src/bin/") {
        required.extend(config.bench_bin_required_deny.iter());
    }
    for need in required {
        if !denied.iter().any(|d| d == need) {
            push(
                Rule::DenyHeader,
                0,
                format!("crate root is missing the mandatory `#![deny({need})]` header"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(class: FileClass, src: &str) -> Vec<Violation> {
        lint_source(Path::new("crates/x/src/code.rs"), class, src)
    }

    fn rules_of(v: &[Violation]) -> Vec<Rule> {
        v.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn flags_panic_constructs_in_library_code() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\nfn g() { panic!(\"boom\") }\nfn h() { todo!() }\n";
        let v = lint(FileClass::Library, src);
        assert_eq!(rules_of(&v), vec![Rule::NoPanic, Rule::NoPanic, Rule::NoPanic]);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn expect_matches_only_the_panicking_method() {
        let v = lint(FileClass::Library, "fn f(r: Result<u8, u8>) { r.expect_err(\"e\"); }\n");
        assert!(v.is_empty());
        let v = lint(FileClass::Library, "fn f(r: Result<u8, u8>) { r.expect(\"e\"); }\n");
        assert_eq!(rules_of(&v), vec![Rule::NoPanic]);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(3).min(x.unwrap_or_default()) }\n";
        assert!(lint(FileClass::Library, src).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_on_same_or_next_line() {
        let same = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint:allow(no-panic)\n";
        assert!(lint(FileClass::Library, same).is_empty());
        let above = "// lint:allow(no-panic)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint(FileClass::Library, above).is_empty());
        let wrong_rule = "// lint:allow(float-eq)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(lint(FileClass::Library, wrong_rule).len(), 1);
    }

    #[test]
    fn panics_in_strings_and_comments_are_ignored() {
        let src = "// this mentions panic!(\"x\") and .unwrap()\nfn f() -> &'static str { \"panic!(no) .unwrap()\" }\n";
        assert!(lint(FileClass::Library, src).is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); assert!(1.0 == 1.0); }\n}\n";
        assert!(lint(FileClass::Library, src).is_empty());
    }

    #[test]
    fn code_after_cfg_test_block_is_still_linted() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\nfn late(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let v = lint(FileClass::Library, src);
        assert_eq!(rules_of(&v), vec![Rule::NoPanic]);
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn float_eq_flags_literal_comparisons() {
        let v = lint(FileClass::Library, "fn f(x: f64) -> bool { x == 0.0 }\n");
        assert_eq!(rules_of(&v), vec![Rule::FloatEq]);
        let v = lint(FileClass::Library, "fn f(x: f32) -> bool { 1.5f32 != x }\n");
        assert_eq!(rules_of(&v), vec![Rule::FloatEq]);
    }

    #[test]
    fn float_eq_ignores_integers_ranges_and_order_comparisons() {
        assert!(lint(FileClass::Library, "fn f(x: u32) -> bool { x == 10 }\n").is_empty());
        assert!(
            lint(FileClass::Library, "fn f(x: f64) -> bool { x <= 1.0 && x >= 0.0 }\n").is_empty()
        );
        assert!(
            lint(FileClass::Library, "fn f(v: &[u8]) -> bool { v[1..4] == v[0..3] }\n").is_empty()
        );
    }

    #[test]
    fn float_cast_scoped_to_feature_and_metric_files() {
        let src = "fn f(x: f64) -> usize { x as usize }\n";
        let in_scope =
            lint_source(Path::new("crates/core/src/features.rs"), FileClass::Library, src);
        assert_eq!(rules_of(&in_scope), vec![Rule::FloatCast]);
        let out_of_scope =
            lint_source(Path::new("crates/core/src/attack.rs"), FileClass::Library, src);
        assert!(out_of_scope.is_empty());
    }

    #[test]
    fn float_cast_accepts_explicit_rounding() {
        let src = "fn f(x: f64) -> usize { x.round() as usize }\nfn g(x: f64) -> u32 { x.floor() as u32 }\n";
        let v = lint_source(Path::new("crates/ml/src/metrics.rs"), FileClass::Library, src);
        assert!(v.is_empty());
    }

    #[test]
    fn undocumented_pub_in_crate_root() {
        let src = "//! Crate docs.\n#![deny(missing_docs)]\n\n/// Documented.\npub fn ok() {}\n\npub fn bad() {}\n\n/// Re-export.\npub use std::fmt;\n\npub use std::io;\n";
        let v = lint(FileClass::LibraryRoot, src);
        assert_eq!(rules_of(&v), vec![Rule::UndocumentedPub, Rule::UndocumentedPub]);
        assert_eq!(v[0].line, 7);
        assert_eq!(v[1].line, 12);
    }

    #[test]
    fn doc_comment_above_attributes_counts() {
        let src = "//! Crate docs.\n#![deny(missing_docs)]\n\n/// Documented.\n#[derive(Debug, Clone)]\npub struct S;\n";
        assert!(lint(FileClass::LibraryRoot, src).is_empty());
    }

    #[test]
    fn deny_header_required_in_crate_roots() {
        let src = "//! Docs.\npub fn x() {}\n// lint:allow(undocumented-pub)\n";
        let v = lint(FileClass::LibraryRoot, "//! Docs.\n");
        assert_eq!(rules_of(&v), vec![Rule::DenyHeader]);
        let _ = src;
        let ok = lint(FileClass::LibraryRoot, "//! Docs.\n#![deny(missing_docs)]\n");
        assert!(ok.is_empty());
        let forbid = lint(FileClass::LibraryRoot, "//! Docs.\n#![forbid(missing_docs)]\n");
        assert!(forbid.is_empty());
        let combined =
            lint(FileClass::LibraryRoot, "//! Docs.\n#![deny(dead_code, missing_docs)]\n");
        assert!(combined.is_empty());
    }

    #[test]
    fn bench_bins_also_need_dead_code_denied() {
        let path = Path::new("crates/bench/src/bin/fig1.rs");
        let missing = lint_source(
            path,
            FileClass::BinaryRoot,
            "//! Fig 1.\n#![deny(missing_docs)]\nfn main() {}\n",
        );
        assert_eq!(rules_of(&missing), vec![Rule::DenyHeader]);
        let ok = lint_source(
            path,
            FileClass::BinaryRoot,
            "//! Fig 1.\n#![deny(missing_docs, dead_code)]\nfn main() {}\n",
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn thread_spawn_flagged_in_library_code_only() {
        let spawn = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(rules_of(&lint(FileClass::Library, spawn)), vec![Rule::ThreadSpawn]);
        let scope = "fn f() { std::thread::scope(|s| { let _ = s; }); }\n";
        assert_eq!(rules_of(&lint(FileClass::Library, scope)), vec![Rule::ThreadSpawn]);
        // The sanctioned-pool escape: a justified allow on the previous line.
        let allowed =
            "fn f() {\n    // lint:allow(thread-spawn) -- sanctioned pool\n    std::thread::scope(|s| { let _ = s; });\n}\n";
        assert!(lint(FileClass::Library, allowed).is_empty());
        // Binaries may thread however they like (only the header rule runs
        // on a binary root, hence the rule-level check).
        assert!(!rules_of(&lint(FileClass::BinaryRoot, spawn)).contains(&Rule::ThreadSpawn));
    }

    #[test]
    fn print_macros_flagged_in_library_code_only() {
        let src = "fn f() { println!(\"x\"); }\nfn g() { eprintln!(\"y\"); }\n";
        let v = lint(FileClass::Library, src);
        assert_eq!(rules_of(&v), vec![Rule::NoPrint, Rule::NoPrint]);
        assert!(v[0].message.contains("println!"));
        assert!(v[1].message.contains("eprintln!"));
        // One violation per line, with the precise macro named.
        let eprint = lint(FileClass::Library, "fn f() { eprint!(\"z\"); }\n");
        assert!(eprint[0].message.contains("`eprint!`"));
        // Binaries own their stdio (only the header rule runs on a binary
        // root, hence the rule-level check).
        assert!(!rules_of(&lint(FileClass::BinaryRoot, src)).contains(&Rule::NoPrint));
        // Sanctioned sink sites carry an allow comment.
        let allowed =
            "fn f() {\n    // lint:allow(no-print) -- sink output\n    eprintln!(\"e\");\n}\n";
        assert!(lint(FileClass::Library, allowed).is_empty());
        // Mentions in comments and strings are ignored.
        let masked = "// println!(\"doc\")\nfn f() -> &'static str { \"println!(no)\" }\n";
        assert!(lint(FileClass::Library, masked).is_empty());
    }

    #[test]
    fn test_code_is_fully_exempt() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint(FileClass::TestCode, src).is_empty());
    }
}
