//! The generated `docs/CONFIGURATION.md` cross-check.
//!
//! Every `SEEKER_*` environment knob lives in the `seeker_obs::env`
//! registry ([`seeker_obs::env::VARS`]) — the `env-read` lexical rule bans
//! raw `std::env::var` reads in library code, so the registry *is* the
//! complete configuration surface. This pass keeps the human-facing table
//! in `docs/CONFIGURATION.md` generated from that single source of truth:
//! the full gate fails when the doc drifts from the registry, and
//! `--bless-config` regenerates it.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The generated doc path, relative to the workspace root.
pub const CONFIG_DOC: &str = "docs/CONFIGURATION.md";

/// Renders the full generated document (prose header + registry table).
#[must_use]
pub fn render_config_doc() -> String {
    let mut doc = String::from(
        "# Configuration\n\n\
         Every runtime knob of the workspace is a `SEEKER_*` environment variable,\n\
         declared once in the `seeker_obs::env` registry and read exactly once per\n\
         process (values are cached in a `OnceLock` snapshot; changes after the\n\
         first read are not observed). Raw `std::env::var` reads in library code\n\
         are banned by the `env-read` lint rule, so this table is the complete\n\
         configuration surface.\n\n\
         **Generated file** — edit `crates/obs/src/env.rs` and run\n\
         `cargo run -p seeker-lint -- --bless-config`; CI fails on drift.\n\n",
    );
    doc.push_str(&seeker_obs::env::markdown_table());
    doc
}

/// Checks `docs/CONFIGURATION.md` against the registry. Returns a drift
/// description, or `None` when the doc is current.
///
/// # Errors
///
/// Propagates I/O errors other than the doc not existing (reported as
/// drift, not error).
pub fn check_config(root: &Path) -> io::Result<Option<String>> {
    let path = root.join(CONFIG_DOC);
    let on_disk = match fs::read_to_string(&path) {
        Ok(doc) => doc,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(Some(format!(
                "{CONFIG_DOC}: [config-doc] missing — run \
                 `cargo run -p seeker-lint -- --bless-config`"
            )));
        }
        Err(e) => return Err(e),
    };
    if on_disk == render_config_doc() {
        Ok(None)
    } else {
        Ok(Some(format!(
            "{CONFIG_DOC}: [config-doc] stale — the `seeker_obs::env` registry changed; \
             run `cargo run -p seeker-lint -- --bless-config`"
        )))
    }
}

/// Regenerates `docs/CONFIGURATION.md` from the registry.
///
/// # Errors
///
/// Propagates I/O errors from the write.
pub fn bless_config(root: &Path) -> io::Result<PathBuf> {
    let rel = PathBuf::from(CONFIG_DOC);
    if let Some(parent) = root.join(&rel).parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(root.join(&rel), render_config_doc())?;
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bless_then_check_roundtrip_and_drift() {
        let root =
            std::env::temp_dir().join(format!("seeker-lint-configdoc-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("mkdir");
        // Missing doc is drift.
        assert!(check_config(&root).expect("check").is_some());
        // Bless → clean.
        let rel = bless_config(&root).expect("bless");
        assert_eq!(rel, PathBuf::from(CONFIG_DOC));
        assert!(check_config(&root).expect("check").is_none());
        // Any edit is drift.
        let path = root.join(CONFIG_DOC);
        let doc = fs::read_to_string(&path).expect("read");
        fs::write(&path, doc.replace("SEEKER_THREADS", "SEEKER_TREADS")).expect("write");
        assert!(check_config(&root).expect("check").is_some());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn the_doc_has_one_row_per_registry_var() {
        let doc = render_config_doc();
        for var in seeker_obs::env::VARS {
            assert!(doc.contains(var.name), "{} missing from the doc", var.name);
        }
    }
}
