//! A small hand-rolled, std-only Rust lexer.
//!
//! Produces the lossless [`Token`] stream described in [`crate::tokens`]:
//! every input byte belongs to exactly one token and the concatenation of
//! token texts reproduces the source (the lossless-lexing property is
//! enforced by a `debug_assert!` here and by a proptest in
//! `tests/lexer_props.rs`). The lexer understands the constructs the old
//! masker (see [`crate::mask`]) special-cased and more:
//!
//! - line comments and **nested** block comments (`/* /* */ */`);
//! - plain and byte strings with escapes (`"a\"b"`, `b"\x00"`), including
//!   `\`-newline line continuations;
//! - raw (byte-)strings with any number of hashes (`r#"…"#`, `br##"…"##`);
//! - raw identifiers (`r#type`) — *not* misread as raw strings;
//! - char/byte literals vs lifetimes (`'\''`, `b'x'`, `'a`, `'static`);
//! - numeric literals with underscores, base prefixes, exponents and type
//!   suffixes (`1_000u64`, `0xFF`, `2.5e-3`, `1f64`), distinguishing
//!   `1.5` (float) from `1..2` (range) and `1.max(2)` (method call);
//! - multi-character operators as single punctuation tokens (`::`, `==`,
//!   `..=`, `->`, `<<=`).
//!
//! Unrecognised bytes are preserved as [`TokenKind::Unknown`] tokens so the
//! lexer never fails and never desynchronises on malformed input.

use crate::tokens::{Token, TokenKind};

/// Multi-character operators, longest first so the longest match wins.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "...", "..=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=",
    "/=", "%=", "^=", "&=", "|=", "::", "->", "=>", "..",
];

/// Lexes `source` into a lossless token list.
///
/// Concatenating `token.text` over the result reproduces `source` exactly;
/// `token.line` is the 1-based line of the token's first byte.
#[must_use]
pub fn lex(source: &str) -> Vec<Token<'_>> {
    let mut lexer = Lexer { source, bytes: source.as_bytes(), pos: 0, line: 1 };
    let mut tokens = Vec::new();
    while let Some(token) = lexer.next_token() {
        tokens.push(token);
    }
    debug_assert!(
        tokens.iter().map(|t| t.text.len()).sum::<usize>() == source.len(),
        "lexer lost bytes"
    );
    tokens
}

struct Lexer<'a> {
    source: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn next_token(&mut self) -> Option<Token<'a>> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        let start = self.pos;
        let line = self.line;
        let kind = self.scan();
        debug_assert!(self.pos > start, "lexer failed to advance");
        let text = &self.source[start..self.pos];
        self.line += text.bytes().filter(|&b| b == b'\n').count();
        Some(Token { kind, text, start, line })
    }

    /// Consumes one token's worth of bytes and returns its kind.
    fn scan(&mut self) -> TokenKind {
        let b = self.bytes[self.pos];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => self.scan_whitespace(),
            b'/' if self.peek(1) == Some(b'/') => self.scan_line_comment(),
            b'/' if self.peek(1) == Some(b'*') => self.scan_block_comment(),
            b'"' => self.scan_string(),
            b'\'' => self.scan_char_or_lifetime(),
            b'r' | b'b' => self.scan_prefixed_or_ident(),
            _ if is_ident_start(b) => self.scan_ident(),
            _ if b.is_ascii_digit() => self.scan_number(),
            _ if b < 0x80 => self.scan_punct(),
            _ => self.scan_unknown_char(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn scan_whitespace(&mut self) -> TokenKind {
        while matches!(self.peek(0), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
        TokenKind::Whitespace
    }

    fn scan_line_comment(&mut self) -> TokenKind {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
        TokenKind::LineComment
    }

    fn scan_block_comment(&mut self) -> TokenKind {
        let mut depth = 0usize;
        while self.pos < self.bytes.len() {
            if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                depth = depth.saturating_sub(1);
                self.pos += 2;
                if depth == 0 {
                    break;
                }
            } else {
                self.pos += 1;
            }
        }
        TokenKind::BlockComment
    }

    /// Scans a plain (possibly byte-) string starting at the opening `"`.
    /// The caller has already consumed any `b` prefix.
    fn scan_string(&mut self) -> TokenKind {
        self.pos += 1; // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' if self.pos + 1 < self.bytes.len() => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    return TokenKind::Str;
                }
                _ => self.pos += 1,
            }
        }
        TokenKind::Str // unterminated: rest of file
    }

    /// Scans a raw string whose opening `r`/`br` prefix has been consumed and
    /// whose hashes start at the current position.
    fn scan_raw_string(&mut self) -> TokenKind {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        debug_assert_eq!(self.peek(0), Some(b'"'), "caller guarantees a raw string");
        self.pos += 1;
        while let Some(b) = self.peek(0) {
            self.pos += 1;
            if b == b'"' && self.count_hashes() >= hashes {
                self.pos += hashes;
                return TokenKind::RawStr;
            }
        }
        TokenKind::RawStr // unterminated: rest of file
    }

    fn count_hashes(&self) -> usize {
        let mut n = 0;
        while self.peek(n) == Some(b'#') {
            n += 1;
        }
        n
    }

    /// Disambiguates char literals from lifetimes/labels at a `'`.
    fn scan_char_or_lifetime(&mut self) -> TokenKind {
        // 'x' / '\n' / '\'' / '"' … are char literals; 'a / 'static / 'outer:
        // are lifetimes or labels. Rule (mirrors rustc): an escaped body is
        // always a char; an ident-like body is a char only when followed by a
        // closing quote.
        if self.peek(1) == Some(b'\\') {
            // Escaped char: consume the escaped character unconditionally
            // (handles '\''), then scan to the closing quote.
            self.pos += 3.min(self.bytes.len() - self.pos);
            while let Some(b) = self.peek(0) {
                self.pos += 1;
                if b == b'\'' {
                    break;
                }
            }
            return TokenKind::Char;
        }
        match (self.peek(1), self.peek(2)) {
            // Non-ident single char closed by a quote: '"', '+', ' ' …
            (Some(c), Some(b'\'')) if !is_ident_start(c) || self.peek(3) != Some(b'\'') => {
                // The guard rejects `'a''` ambiguity conservatively; for
                // ident-like chars the simple 3-byte form 'x' applies.
                self.pos += 3;
                TokenKind::Char
            }
            (Some(c), _) if is_ident_start(c) || c >= 0x80 => {
                // Lifetime or label: consume ident chars after the quote.
                self.pos += 1;
                self.scan_ident();
                TokenKind::Lifetime
            }
            _ => {
                // Lone quote (malformed): emit as punctuation, stay lossless.
                self.pos += 1;
                TokenKind::Punct
            }
        }
    }

    /// Handles tokens starting with `r` or `b`: raw strings (`r"`, `r#"`),
    /// byte strings (`b"`, `br"`, `br#"`), byte chars (`b'x'`), raw
    /// identifiers (`r#type`) and plain identifiers (`radius`, `bias`).
    fn scan_prefixed_or_ident(&mut self) -> TokenKind {
        let b0 = self.bytes[self.pos];
        let rest = &self.bytes[self.pos + 1..];
        let raw_after = |skip: usize| -> bool {
            // After the prefix, a raw string is `#*"`.
            let mut i = skip;
            while rest.get(i) == Some(&b'#') {
                i += 1;
            }
            rest.get(i) == Some(&b'"') && (i > skip || rest.get(skip) == Some(&b'"'))
        };
        match b0 {
            b'r' => {
                if rest.first() == Some(&b'"') || (rest.first() == Some(&b'#') && raw_after(0)) {
                    self.pos += 1;
                    return self.scan_raw_string();
                }
                if rest.first() == Some(&b'#') && rest.get(1).copied().is_some_and(is_ident_start) {
                    // Raw identifier r#type: consume r# then the ident.
                    self.pos += 2;
                    return self.scan_ident();
                }
            }
            b'b' => {
                if rest.first() == Some(&b'"') {
                    self.pos += 1;
                    return self.scan_string();
                }
                if rest.first() == Some(&b'\'') {
                    self.pos += 1;
                    self.scan_char_or_lifetime();
                    return TokenKind::Char;
                }
                if rest.first() == Some(&b'r')
                    && (rest.get(1) == Some(&b'"') || (rest.get(1) == Some(&b'#') && raw_after(1)))
                {
                    self.pos += 2;
                    return self.scan_raw_string();
                }
            }
            _ => unreachable!("caller dispatches only r/b"),
        }
        self.scan_ident()
    }

    fn scan_ident(&mut self) -> TokenKind {
        while let Some(b) = self.peek(0) {
            if is_ident_continue(b) {
                self.pos += 1;
            } else if b >= 0x80 {
                // Non-ASCII identifier character (the repo's sources use a
                // few Greek letters in identifiers-adjacent positions);
                // consume the whole UTF-8 char to stay on a char boundary.
                self.pos += utf8_len(b);
            } else {
                break;
            }
        }
        TokenKind::Ident
    }

    fn scan_number(&mut self) -> TokenKind {
        let mut float = false;
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.pos += 2;
            while matches!(self.peek(0), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
                self.pos += 1;
            }
            return TokenKind::Int;
        }
        self.eat_digits();
        if self.peek(0) == Some(b'.') {
            match self.peek(1) {
                // `1.5`: fraction digits follow.
                Some(d) if d.is_ascii_digit() => {
                    float = true;
                    self.pos += 1;
                    self.eat_digits();
                }
                // `1..2` is a range and `1.max()` a method call — the dot is
                // not part of the number. A bare trailing `1.` is a float.
                Some(b'.') => {}
                Some(c) if is_ident_start(c) => {}
                _ => {
                    float = true;
                    self.pos += 1;
                }
            }
        }
        if float && matches!(self.peek(0), Some(b'e' | b'E')) {
            let sign = usize::from(matches!(self.peek(1), Some(b'+' | b'-')));
            if self.peek(1 + sign).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1 + sign;
                self.eat_digits();
            }
        }
        // Type suffix: `u64`, `f32`, `usize` … (also makes `1f64` a float).
        let suffix_start = self.pos;
        while matches!(self.peek(0), Some(b) if is_ident_continue(b)) {
            self.pos += 1;
        }
        let suffix = &self.source[suffix_start..self.pos];
        if suffix.starts_with('f') || (!float && suffix.starts_with('e')) {
            // `1f64` is a float; `1e5`-style suffixes on an integer part
            // (exponent without a dot) are floats too.
            float = suffix.starts_with('f') || suffix[1..].bytes().all(|b| b.is_ascii_digit());
        }
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }

    fn eat_digits(&mut self) {
        while matches!(self.peek(0), Some(b) if b.is_ascii_digit() || b == b'_') {
            self.pos += 1;
        }
    }

    fn scan_punct(&mut self) -> TokenKind {
        let rest = &self.source[self.pos..];
        for op in OPERATORS {
            if rest.starts_with(op) {
                self.pos += op.len();
                return TokenKind::Punct;
            }
        }
        self.pos += 1;
        TokenKind::Punct
    }

    fn scan_unknown_char(&mut self) -> TokenKind {
        self.pos += utf8_len(self.bytes[self.pos]);
        TokenKind::Unknown
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Length in bytes of the UTF-8 character starting with `lead` (1 for
/// continuation/invalid bytes so the lexer always advances).
fn utf8_len(lead: u8) -> usize {
    match lead {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::lex;
    use crate::tokens::TokenKind;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).iter().filter(|t| t.kind.is_code()).map(|t| (t.kind, t.text)).collect()
    }

    fn lossless(src: &str) {
        let joined: String = lex(src).iter().map(|t| t.text).collect();
        assert_eq!(joined, src, "lexing must be lossless");
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let toks = kinds("pub fn f(x: u32) -> u32 { x == 1 }");
        assert_eq!(toks[0], (TokenKind::Ident, "pub"));
        assert_eq!(toks[1], (TokenKind::Ident, "fn"));
        assert!(toks.contains(&(TokenKind::Punct, "->")));
        assert!(toks.contains(&(TokenKind::Punct, "==")));
        lossless("pub fn f(x: u32) -> u32 { x == 1 }");
    }

    #[test]
    fn comments_line_block_nested() {
        let src = "a // line panic!()\nb /* blk /* nested .unwrap() */ end */ c";
        let toks = kinds(src);
        assert_eq!(
            toks,
            vec![(TokenKind::Ident, "a"), (TokenKind::Ident, "b"), (TokenKind::Ident, "c")]
        );
        let all = lex(src);
        assert!(all.iter().any(|t| t.kind == TokenKind::LineComment));
        assert!(all.iter().any(|t| t.kind == TokenKind::BlockComment && t.text.contains("nested")));
        lossless(src);
    }

    #[test]
    fn unterminated_block_comment_extends_to_eof() {
        let src = "x /* open /* deep */ still open";
        let toks = kinds(src);
        assert_eq!(toks, vec![(TokenKind::Ident, "x")]);
        lossless(src);
    }

    #[test]
    fn strings_with_escapes_and_continuations() {
        lossless("let s = \"a\\\"b.unwrap()\"; t");
        let toks = kinds("let s = \"a\\\"b.unwrap()\"; t");
        assert!(toks.iter().any(|(k, x)| *k == TokenKind::Str && x.contains("unwrap")));
        assert!(toks.iter().any(|(_, x)| *x == "t"));
        // `\`-newline continuation stays inside the string token.
        let src = "let s = \"two \\\n  lines\";\nfn f() {}";
        let all = lex(src);
        let f = all.iter().find(|t| t.is_ident("fn")).expect("fn token");
        assert_eq!(f.line, 3);
        lossless(src);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r#"panic!( " inner "#; let u = r##"two "# hashes"##;"####;
        let toks = kinds(src);
        let raws: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokenKind::RawStr).map(|(_, x)| *x).collect();
        assert_eq!(raws.len(), 2, "{toks:?}");
        assert!(raws[0].contains("panic"));
        assert!(raws[1].contains("\"#"));
        lossless(src);
    }

    #[test]
    fn raw_byte_strings_and_byte_literals() {
        lossless(r#"let a = br"raw"; let b = b"bytes\x00"; let c = b'x';"#);
        let toks = kinds(r#"let a = br"raw"; let b = b"bytes\x00"; let c = b'x';"#);
        assert!(toks.iter().any(|(k, x)| *k == TokenKind::RawStr && x.contains("raw")));
        assert!(toks.iter().any(|(k, x)| *k == TokenKind::Str && x.contains("bytes")));
        assert!(toks.iter().any(|(k, x)| *k == TokenKind::Char && *x == "b'x'"));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let toks = kinds("let r#type = 1; r#fn");
        assert!(toks.contains(&(TokenKind::Ident, "r#type")));
        assert!(toks.contains(&(TokenKind::Ident, "r#fn")));
        lossless("let r#type = 1; r#fn");
    }

    #[test]
    fn chars_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = '\\''; let d = '\"'; let e = 'x'; 'outer: loop { break 'outer; } }";
        let toks = kinds(src);
        assert!(toks.contains(&(TokenKind::Lifetime, "'a")));
        assert!(toks.contains(&(TokenKind::Char, "'\\''")));
        assert!(toks.contains(&(TokenKind::Char, "'\"'")));
        assert!(toks.contains(&(TokenKind::Char, "'x'")));
        assert!(toks.contains(&(TokenKind::Lifetime, "'outer")));
        lossless(src);
    }

    #[test]
    fn numbers_ints_floats_ranges_methods() {
        let toks = kinds("let a = 1_000u64; let b = 0xFF; let c = 2.5e-3; let d = 1..4; let e = 1.max(2); let f = 1f64; let g = 1.;");
        assert!(toks.contains(&(TokenKind::Int, "1_000u64")));
        assert!(toks.contains(&(TokenKind::Int, "0xFF")));
        assert!(toks.contains(&(TokenKind::Float, "2.5e-3")));
        assert!(toks.contains(&(TokenKind::Punct, "..")));
        assert!(toks.contains(&(TokenKind::Int, "1")));
        assert!(toks.contains(&(TokenKind::Ident, "max")));
        assert!(toks.contains(&(TokenKind::Float, "1f64")));
        assert!(toks.contains(&(TokenKind::Float, "1.")));
    }

    #[test]
    fn line_numbers_match_newline_counts() {
        let src = "a\nb\n  c /* x\ny */ d\n\"s\ntr\" e";
        for t in lex(src) {
            let expect = 1 + src[..t.start].bytes().filter(|&b| b == b'\n').count();
            assert_eq!(t.line, expect, "token {t}");
        }
    }

    #[test]
    fn non_ascii_text_stays_lossless() {
        let src = "// §III-C σ-capacity ⊕\nlet σ_like = 1; \"π ≈ 3.14\"";
        lossless(src);
    }
}
