//! Hot-path allocation analysis over the workspace call graph.
//!
//! The FriendSeeker pipeline's wall time is dominated by a handful of
//! pair-quadratic functions (the candidate generator, the feature-cache
//! refresh, the SVM decision function, the `seeker-par` mapping kernels).
//! The [`HOT_PATHS`] table declares those roots by id suffix; the analysis
//! marks everything they transitively call — following
//! [`crate::callgraph::CallTarget::Ambiguous`] edges through **every**
//! candidate, a conservative over-approximation — and flags allocations
//! that happen *inside loop bodies* of a hot function:
//! `Vec::new`/`Box::new`/`String::from` calls, `.to_vec()`/`.clone()`/
//! `.collect()`/`.to_string()`/`.to_owned()` method calls, and `format!`.
//!
//! An allocation the author has measured and accepted is sanctioned with
//! `// lint:allow(hot-alloc)` on the same or preceding line; everything
//! else fails the `--hotpath` gate. Allocations hidden inside iterator
//! closures that the loop detector cannot see (`.map(|x| x.clone())` on a
//! single chained expression) are a documented false-negative class.

use crate::callgraph::{build_call_graph, CallGraph};

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Declared hot roots, matched against node ids by `::`-suffix: an entry
/// `X::y` matches `seeker_foo::mod::X::y` and `X::y` alike. Keep this table
/// in sync with the "Hot paths" section of `docs/LINTING.md`.
pub const HOT_PATHS: &[&str] = &[
    // Candidate generation (pair-quadratic fan-out).
    "CellIndex::candidate_pairs",
    "cell_index::candidate_pairs",
    // Phase-2 refinement inner loop.
    "FeatureCache::full",
    "FeatureCache::refresh",
    "path_count_profile",
    // Feature extraction per pair.
    "Phase1Model::features",
    "Phase1Model::predict_proba",
    "social_proximity_feature",
    "composite_feature",
    // SVM scoring per pair.
    "Svm::decision_one",
    "Svm::predict_one",
    "Svm::decision",
    "Svm::predict",
    "Kernel::eval",
    // The parallel mapping kernels everything above fans out through.
    "seeker_par::par_map",
    "seeker_par::par_map_indexed",
    "seeker_par::par_map_chunked",
];

/// One unsanctioned allocation inside a loop body on a hot path.
#[derive(Debug, Clone)]
pub struct HotFinding {
    /// Source file, relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line of the allocation.
    pub line: usize,
    /// The allocating construct (`Vec::new`, `.clone`, `format!`).
    pub what: String,
    /// The containing function's call-graph id.
    pub in_fn: String,
    /// The declared hot root through which the function became hot.
    pub root: String,
}

impl fmt::Display for HotFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [hot-alloc] {} in loop body of {} (hot via {})",
            self.file.display(),
            self.line,
            self.what,
            self.in_fn,
            self.root
        )
    }
}

/// Whether a node id matches a [`HOT_PATHS`] entry (exact or `::`-suffix).
#[must_use]
pub fn is_hot_root(id: &str) -> bool {
    HOT_PATHS.iter().any(|p| id == *p || id.ends_with(&format!("::{p}")))
}

/// Computes the hot-path allocation findings for a call graph, ordered by
/// file then line.
#[must_use]
pub fn hot_findings(graph: &CallGraph) -> Vec<HotFinding> {
    let n = graph.nodes.len();
    // `hot_via[i]` is the declared root id that made node i hot.
    let mut hot_via: Vec<Option<usize>> = vec![None; n];
    let mut queue: Vec<usize> = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if is_hot_root(&node.id) {
            hot_via[i] = Some(i);
            queue.push(i);
        }
    }
    // Forward closure: everything a hot function may call is hot.
    while let Some(i) = queue.pop() {
        let root = hot_via[i].unwrap_or(i);
        for edge in &graph.nodes[i].calls {
            for &to in CallGraph::targets_of(edge) {
                if hot_via[to].is_none() {
                    hot_via[to] = Some(root);
                    queue.push(to);
                }
            }
        }
    }

    let mut findings: Vec<HotFinding> = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        let Some(root) = hot_via[i] else { continue };
        for alloc in &node.loop_allocs {
            if !alloc.allowed {
                findings.push(HotFinding {
                    file: node.file.clone(),
                    line: alloc.line,
                    what: alloc.what.clone(),
                    in_fn: node.id.clone(),
                    root: graph.nodes[root].id.clone(),
                });
            }
        }
    }
    findings.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    findings
}

/// Builds the call graph for `root` and returns its hot-path findings.
///
/// # Errors
///
/// Propagates I/O errors from graph construction.
pub fn check_hotpath(root: &Path) -> io::Result<Vec<HotFinding>> {
    Ok(hot_findings(&build_call_graph(root)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn workspace(lib: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!(
            "seeker-lint-hot-{}-{}",
            std::process::id(),
            lib.len()
        ));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/alpha/src")).expect("mkdir");
        fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n")
            .expect("write");
        fs::write(
            root.join("crates/alpha/Cargo.toml"),
            "[package]\nname = \"alpha\"\nversion = \"0.0.0\"\n",
        )
        .expect("write");
        fs::write(root.join("crates/alpha/src/lib.rs"), lib).expect("write");
        root
    }

    #[test]
    fn allocation_in_hot_loop_is_flagged_transitively() {
        let root = workspace(
            "//! A.\n#![deny(missing_docs)]\n\nfn helper(v: &[u32]) -> Vec<String> {\n    let mut out = Vec::new();\n    for x in v {\n        out.push(format!(\"{x}\"));\n    }\n    out\n}\n\n/// Hot root by suffix.\npub fn path_count_profile(v: &[u32]) -> Vec<String> { helper(v) }\n",
        );
        let findings = check_hotpath(&root).expect("hotpath");
        assert_eq!(findings.len(), 1, "findings: {findings:?}");
        assert_eq!(findings[0].what, "format!");
        assert_eq!(findings[0].in_fn, "alpha::helper");
        assert_eq!(findings[0].root, "alpha::path_count_profile");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn cold_functions_and_sanctioned_sites_are_silent() {
        let root = workspace(
            "//! A.\n#![deny(missing_docs)]\n\n/// Cold: allocates freely.\npub fn cold(v: &[u32]) -> Vec<String> {\n    let mut out = Vec::new();\n    for x in v {\n        out.push(format!(\"{x}\"));\n    }\n    out\n}\n\n/// Hot, but sanctioned.\npub fn path_count_profile(v: &[u32]) -> Vec<Vec<u32>> {\n    let mut out = Vec::new();\n    for _ in v {\n        // Amortized by the arena below. lint:allow(hot-alloc)\n        out.push(v.to_vec());\n    }\n    out\n}\n",
        );
        let findings = check_hotpath(&root).expect("hotpath");
        assert!(findings.is_empty(), "findings: {findings:?}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn hot_root_suffix_matching() {
        assert!(is_hot_root("seeker_ml::svm::Svm::decision_one"));
        assert!(is_hot_root("seeker_par::par_map"));
        assert!(!is_hot_root("seeker_ml::svm::Svm::fit"));
        assert!(!is_hot_root("alpha::my_par_map"));
    }
}
