//! Source masking: blanks out comments and string/char literal bodies while
//! preserving byte offsets and line structure, so the rule matchers in
//! [`crate::rules`] can use plain substring searches without being fooled by
//! `panic!` appearing in a doc comment or `"=="` inside a string.

/// Returns a same-length copy of `source` in which the contents of comments
/// and string/char literals are replaced by spaces (newlines are kept so
/// line numbers survive). String delimiters themselves are preserved so
/// adjacent tokens do not merge.
#[must_use]
pub fn mask_source(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                // Line comment (also covers /// and //! doc comments).
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                i = mask_block_comment(bytes, i, &mut out);
            }
            b'"' => {
                let hashes = raw_string_hashes(bytes, i, &out);
                match hashes {
                    Some(n) => i = mask_raw_string(bytes, i, n, &mut out),
                    None => i = mask_plain_string(bytes, i, &mut out),
                }
            }
            b'\'' => {
                i = mask_char_or_lifetime(bytes, i, &mut out);
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }

    // The transformation only replaces ASCII bytes with ASCII spaces and
    // copies everything else verbatim, so the result is valid UTF-8.
    String::from_utf8(out).unwrap_or_default()
}

/// Masks a (possibly nested) block comment starting at `start`; returns the
/// index just past it.
fn mask_block_comment(bytes: &[u8], start: usize, out: &mut Vec<u8>) -> usize {
    let mut depth = 0usize;
    let mut i = start;
    while i < bytes.len() {
        if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            depth += 1;
            out.push(b' ');
            out.push(b' ');
            i += 2;
        } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            depth -= 1;
            out.push(b' ');
            out.push(b' ');
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
            i += 1;
        }
    }
    i
}

/// If the `"` at `quote` opens a raw string (`r"…"`, `br#"…"#`, …), returns
/// the number of `#`s; otherwise `None`. The prefix has already been copied
/// to `out`, so it is inspected there.
fn raw_string_hashes(_bytes: &[u8], _quote: usize, out: &[u8]) -> Option<usize> {
    let mut j = out.len();
    let mut hashes = 0usize;
    while j > 0 && out[j - 1] == b'#' {
        hashes += 1;
        j -= 1;
    }
    if j == 0 || out[j - 1] != b'r' {
        return None;
    }
    // `r` must itself start an identifier-like token (reject e.g. `var"`),
    // optionally preceded by a byte-string `b`.
    let mut k = j - 1;
    if k > 0 && out[k - 1] == b'b' {
        k -= 1;
    }
    if k > 0 && (out[k - 1].is_ascii_alphanumeric() || out[k - 1] == b'_') {
        return None;
    }
    Some(hashes)
}

/// Masks a raw string with `hashes` `#`s, starting at the opening quote.
fn mask_raw_string(bytes: &[u8], start: usize, hashes: usize, out: &mut Vec<u8>) -> usize {
    out.push(b'"');
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'"'
            && bytes[i + 1..].iter().take(hashes).filter(|&&c| c == b'#').count() == hashes
        {
            out.push(b'"');
            for _ in 0..hashes {
                out.push(b'#');
            }
            return i + 1 + hashes;
        }
        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
        i += 1;
    }
    i
}

/// Masks an escaped (ordinary) string literal starting at the opening quote.
fn mask_plain_string(bytes: &[u8], start: usize, out: &mut Vec<u8>) -> usize {
    out.push(b'"');
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if i + 1 < bytes.len() => {
                // A `\<newline>` line continuation must keep its newline or
                // every following line number shifts by one.
                out.push(b' ');
                out.push(if bytes[i + 1] == b'\n' { b'\n' } else { b' ' });
                i += 2;
            }
            b'"' => {
                out.push(b'"');
                return i + 1;
            }
            b'\n' => {
                out.push(b'\n');
                i += 1;
            }
            _ => {
                out.push(b' ');
                i += 1;
            }
        }
    }
    i
}

/// Distinguishes char literals (`'x'`, `'\n'`) from lifetimes/labels (`'a`)
/// and masks only the former; returns the index just past what was consumed.
fn mask_char_or_lifetime(bytes: &[u8], start: usize, out: &mut Vec<u8>) -> usize {
    let i = start;
    if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
        // Escaped char literal: the char after the backslash is consumed
        // unconditionally (handles '\'' correctly), then scan to the close.
        let mut j = (i + 3).min(bytes.len());
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        out.push(b'\'');
        for _ in i + 1..j {
            out.push(b' ');
        }
        if j < bytes.len() {
            out.push(b'\'');
            return j + 1;
        }
        return j;
    }
    if i + 2 < bytes.len() && bytes[i + 2] == b'\'' && bytes[i + 1] != b'\'' {
        // Single-char literal like 'x' (including '"').
        out.push(b'\'');
        out.push(b' ');
        out.push(b'\'');
        return i + 3;
    }
    // Lifetime or label: keep the quote, continue normally.
    out.push(b'\'');
    i + 1
}

#[cfg(test)]
mod tests {
    use super::mask_source;

    #[test]
    fn string_line_continuation_keeps_its_newline() {
        let src = "let s = \"two \\\n    lines\";\nfn f() {}\n";
        let m = mask_source(src);
        assert_eq!(m.lines().count(), src.lines().count());
        assert!(m.lines().nth(2).unwrap().contains("fn f() {}"));
    }

    #[test]
    fn masks_line_and_doc_comments() {
        let m = mask_source("let x = 1; // panic!(\"no\")\n/// .unwrap()\nfn f() {}\n");
        assert!(!m.contains("panic!"));
        assert!(!m.contains("unwrap"));
        assert!(m.contains("fn f() {}"));
        assert_eq!(m.lines().count(), 3);
    }

    #[test]
    fn masks_block_comments_nested() {
        let m = mask_source("a /* outer /* inner .expect( */ still */ b");
        assert!(!m.contains("expect"));
        assert!(m.starts_with('a'));
        assert!(m.ends_with('b'));
    }

    #[test]
    fn masks_string_contents_but_keeps_quotes() {
        let m = mask_source(r#"let s = "x == 1.0 .unwrap()"; let t = 2;"#);
        assert!(!m.contains("=="));
        assert!(!m.contains("unwrap"));
        assert!(m.contains(&format!("\"{}\"", " ".repeat("x == 1.0 .unwrap()".len()))));
        assert!(m.contains("let t = 2;"));
    }

    #[test]
    fn masks_raw_strings() {
        let m = mask_source(r##"let s = r#"panic!( " inner "#; let u = 3;"##);
        assert!(!m.contains("panic"));
        assert!(m.contains("let u = 3;"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let m = mask_source(r#"let s = "a\"b.unwrap()"; let v = 4;"#);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("let v = 4;"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let m = mask_source("fn f<'a>(x: &'a str) -> char { '\"' }");
        // The double-quote char literal must not open a string.
        assert!(m.contains("fn f<'a>(x: &'a str) -> char"));
        let m2 = mask_source("let c = 'x'; let d = '\\n'; panic!()");
        assert!(m2.contains("panic!()"), "{m2:?}");
        assert!(!m2.contains('x'));
    }

    #[test]
    fn preserves_line_count_and_length() {
        let src = "let a = \"multi\nline\nstring\"; // c\nfn g() {}\n";
        let m = mask_source(src);
        assert_eq!(m.len(), src.len());
        assert_eq!(m.lines().count(), src.lines().count());
    }
}
