//! The unsafe ledger: every `unsafe` construct in library code must sit
//! under a `// SAFETY:` comment **and** be recorded in the blessed lockfile
//! `api/unsafe.lock` — one line per construct with its crate-qualified item
//! path, construct kind, span-normalized body hash, and one-line obligation
//! (the first `SAFETY:` line).
//!
//! The lifecycle mirrors `api/panics.lock`: `--check-unsafe` (and the
//! default full gate) fails on *both* directions of drift — a new or
//! changed `unsafe` construct must be consciously blessed, and a removed
//! one must be re-blessed away so the ledger shrinks with the unsafe
//! surface. `--bless-unsafe` regenerates the lock. A missing `SAFETY:`
//! comment is a hard violation regardless of lock state: the ledger records
//! *reviewed* obligations, it cannot substitute for writing one down.
//!
//! The body hash is computed over the construct's **code tokens only**
//! (whitespace and comments excluded, FNV-1a 64-bit), so reformatting never
//! churns the ledger but any semantic edit inside an `unsafe` region —
//! however small — forces a conscious re-bless of its entry.

use crate::lexer::lex;
use crate::rules::{self, FileClass, Rule};
use crate::syntax::{parse_stream, Item};
use crate::tokens::{TokenKind, TokenStream};
use crate::walk::{workspace_crates, workspace_sources};

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The checked-in ledger path, relative to the workspace root.
pub const UNSAFE_LOCK: &str = "api/unsafe.lock";

/// The syntactic class of an `unsafe` construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// An `unsafe { … }` block expression.
    Block,
    /// An `unsafe fn` (or an `unsafe` trait-method signature).
    Fn,
    /// An `unsafe impl … { … }` block.
    Impl,
    /// An `unsafe trait … { … }` declaration.
    Trait,
    /// Anything else (`unsafe extern { … }`, future syntax).
    Other,
}

impl UnsafeKind {
    /// The stable lowercase name used in the lockfile.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            UnsafeKind::Block => "block",
            UnsafeKind::Fn => "fn",
            UnsafeKind::Impl => "impl",
            UnsafeKind::Trait => "trait",
            UnsafeKind::Other => "other",
        }
    }
}

/// One `unsafe` construct found in library code.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Stable ledger id: `crate::module::item#ordinal` (ordinal counts the
    /// unsafe constructs inside one item, in source order).
    pub id: String,
    /// The construct kind.
    pub kind: UnsafeKind,
    /// Source file, relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    /// FNV-1a 64 hash over the construct's code-token texts.
    pub hash: u64,
    /// The one-line obligation: the text after `SAFETY:` on the first
    /// matching comment line, `None` when no SAFETY comment was found.
    pub obligation: Option<String>,
}

/// A `SAFETY:`-comment violation (reported independently of ledger drift).
#[derive(Debug, Clone)]
pub struct UnsafeViolation {
    /// Source file, relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for UnsafeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [unsafe-ledger] {}", self.file.display(), self.line, self.message)
    }
}

/// One direction of drift between the workspace and `api/unsafe.lock`.
#[derive(Debug, Clone)]
pub enum UnsafeDrift {
    /// The lockfile does not exist yet.
    MissingLock,
    /// An `unsafe` construct exists that the ledger does not record.
    Added(UnsafeSite),
    /// A ledger entry whose construct no longer exists.
    Removed(String),
    /// A recorded construct whose body hash or obligation changed.
    Changed {
        /// The ledger id.
        id: String,
        /// What changed (`body hash` / `obligation`).
        what: String,
    },
}

impl fmt::Display for UnsafeDrift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnsafeDrift::MissingLock => write!(
                f,
                "{UNSAFE_LOCK}: [unsafe-ledger] missing ledger \
                 (run `cargo run -p seeker-lint -- --bless-unsafe`)"
            ),
            UnsafeDrift::Added(site) => write!(
                f,
                "{}:{}: [unsafe-ledger] unrecorded `unsafe` {} `{}` — review its SAFETY \
                 obligation, then `cargo run -p seeker-lint -- --bless-unsafe`",
                site.file.display(),
                site.line,
                site.kind.as_str(),
                site.id
            ),
            UnsafeDrift::Removed(id) => write!(
                f,
                "{UNSAFE_LOCK}: [unsafe-ledger] stale entry `{id}` — the construct is gone; \
                 re-bless so the ledger shrinks with the unsafe surface"
            ),
            UnsafeDrift::Changed { id, what } => write!(
                f,
                "{UNSAFE_LOCK}: [unsafe-ledger] `{id}` drifted ({what}) — re-review the \
                 obligation, then `cargo run -p seeker-lint -- --bless-unsafe`"
            ),
        }
    }
}

/// FNV-1a 64-bit over `bytes` folded into `hash` (stable across platforms
/// and toolchains, unlike `DefaultHasher`).
fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Collects every `unsafe` construct in non-test library code, plus the
/// missing-`SAFETY:` violations. Sites are sorted by id.
///
/// # Errors
///
/// Propagates I/O errors from source reads.
pub fn unsafe_sites(root: &Path) -> io::Result<(Vec<UnsafeSite>, Vec<UnsafeViolation>)> {
    let crates = workspace_crates(root)?;
    let sources = workspace_sources(root)?;
    let mut sites = Vec::new();
    let mut violations = Vec::new();
    for file in &sources {
        if !matches!(file.class, FileClass::Library | FileClass::LibraryRoot) {
            continue;
        }
        let Some(info) = crates.iter().find(|c| file.path.starts_with(c.dir.join("src"))) else {
            continue;
        };
        let source = fs::read_to_string(root.join(&file.path))?;
        collect_file(
            &info.name,
            &module_path(&info.dir, &file.path),
            &file.path,
            &source,
            |site| {
                sites.push(site);
            },
            |v| violations.push(v),
        );
    }
    sites.sort_by(|a, b| a.id.cmp(&b.id));
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok((sites, violations))
}

/// The `::`-joined module path of `file` inside crate dir `crate_dir`
/// (`src/pool.rs` → `pool`, `src/lib.rs` → empty, `src/a/mod.rs` → `a`).
fn module_path(crate_dir: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(crate_dir.join("src")).unwrap_or(file);
    let mut segments: Vec<String> = rel
        .with_extension("")
        .components()
        .map(|c| c.as_os_str().to_string_lossy().to_string())
        .collect();
    if segments.last().is_some_and(|s| s == "lib" || s == "mod") {
        segments.pop();
    }
    segments.join("::")
}

/// Scans one file's token stream for `unsafe` constructs.
fn collect_file(
    crate_name: &str,
    module: &str,
    rel_path: &Path,
    source: &str,
    mut on_site: impl FnMut(UnsafeSite),
    mut on_violation: impl FnMut(UnsafeViolation),
) {
    let stream = TokenStream::new(lex(source));
    let tree = parse_stream(&stream, source.len());
    let test_lines = rules::test_region_lines(&stream);
    let allows = rules::collect_allows(&stream);
    let lines: Vec<&str> = source.lines().collect();
    let mut per_item_ordinal: std::collections::BTreeMap<String, usize> =
        std::collections::BTreeMap::new();

    for (i, t) in stream.code_iter() {
        if !t.is_ident("unsafe") || test_lines.contains(&t.line) {
            continue;
        }
        let kind = match stream.code(i + 1) {
            Some(n) if n.is_punct("{") => UnsafeKind::Block,
            Some(n) if n.is_ident("fn") => UnsafeKind::Fn,
            Some(n) if n.is_ident("impl") => UnsafeKind::Impl,
            Some(n) if n.is_ident("trait") => UnsafeKind::Trait,
            _ => UnsafeKind::Other,
        };
        let end = construct_end(&stream, i);
        let mut hash = FNV_OFFSET;
        for j in i..end {
            if let Some(u) = stream.code(j) {
                hash = fnv1a(hash, u.text.as_bytes());
                hash = fnv1a(hash, &[0x1F]);
            }
        }
        let item_chain = enclosing_chain(&tree.items, i);
        let mut id = String::from(crate_name);
        if !module.is_empty() {
            id.push_str("::");
            id.push_str(module);
        }
        for name in &item_chain {
            id.push_str("::");
            id.push_str(name);
        }
        let ordinal = per_item_ordinal.entry(id.clone()).or_insert(0);
        id.push('#');
        id.push_str(&ordinal.to_string());
        *ordinal += 1;

        let obligation = safety_obligation(&lines, t.line);
        let allowed = allows
            .iter()
            .any(|(l, r)| *r == Rule::UnsafeLedger && (*l == t.line || *l + 1 == t.line));
        if obligation.is_none() && !allowed {
            on_violation(UnsafeViolation {
                file: rel_path.to_path_buf(),
                line: t.line,
                message: format!(
                    "`unsafe` {} without a `// SAFETY:` comment on the preceding lines — \
                     write the obligation down (or `lint:allow(unsafe-ledger)` with a reason)",
                    kind.as_str()
                ),
            });
        }
        on_site(UnsafeSite {
            id,
            kind,
            file: rel_path.to_path_buf(),
            line: t.line,
            hash,
            obligation,
        });
    }
}

/// One past the last code-token index of the `unsafe` construct starting at
/// code index `i`: the matching `}` of the construct's brace group, or the
/// terminating `;` for a body-less `unsafe fn` signature.
fn construct_end(stream: &TokenStream<'_>, i: usize) -> usize {
    // Find the first `{` at bracket depth 0 after `unsafe` (the block's own
    // `{` when the next token already opens one).
    let mut j = i + 1;
    let mut depth = 0isize;
    while let Some(t) = stream.code(j) {
        if t.kind == TokenKind::Punct {
            match t.text {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                ";" if depth == 0 => return j + 1,
                // A closing brace of the *enclosing* body: malformed input,
                // stop before it.
                "}" if depth == 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    // Match the brace group.
    let mut brace = 0isize;
    while let Some(t) = stream.code(j) {
        if t.is_punct("{") {
            brace += 1;
        } else if t.is_punct("}") {
            brace -= 1;
            if brace == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// The chain of named-item names (modules, impls, traits, fns) enclosing
/// code-token index `i`, outermost first.
fn enclosing_chain(items: &[Item], i: usize) -> Vec<String> {
    for item in items {
        if item.code_start <= i && i < item.code_end {
            let mut chain = Vec::new();
            if !item.name.is_empty() {
                chain.push(item.name.clone());
            }
            chain.extend(enclosing_chain(&item.children, i));
            return chain;
        }
    }
    Vec::new()
}

/// Looks for a `SAFETY:` comment adjacent to `line` (1-based): on the line
/// itself, or on the contiguous run of comment/attribute lines directly
/// above it. Returns the text after the first `SAFETY:` marker, trimmed
/// (empty string when the marker has no same-line text).
fn safety_obligation(lines: &[&str], line: usize) -> Option<String> {
    let extract = |text: &str| -> Option<String> {
        let idx = text.find("SAFETY:")?;
        Some(text[idx + "SAFETY:".len()..].trim().to_string())
    };
    // Same line (trailing comment).
    if let Some(l) = lines.get(line - 1) {
        if let Some(comment_start) = l.find("//") {
            if let Some(o) = extract(&l[comment_start..]) {
                return Some(o);
            }
        }
    }
    // Contiguous comment / attribute lines above. The obligation is the
    // *first* SAFETY line of the block, so scan the block top-down.
    let mut first = line - 1; // 0-based index one past the block's top
    while first > 0 {
        let trimmed = lines[first - 1].trim_start();
        if trimmed.starts_with("//") || trimmed.starts_with("#[") || trimmed.starts_with("#![") {
            first -= 1;
        } else {
            break;
        }
    }
    for l in &lines[first..line - 1] {
        let trimmed = l.trim_start();
        if trimmed.starts_with("//") {
            if let Some(o) = extract(trimmed) {
                return Some(o);
            }
        }
    }
    None
}

/// Parses the ledger into `(id, kind, hash, obligation)` rows.
fn parse_lock(doc: &str) -> Vec<(String, String, String, String)> {
    doc.lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let mut parts = l.splitn(4, '\t');
            Some((
                parts.next()?.to_string(),
                parts.next()?.to_string(),
                parts.next()?.to_string(),
                parts.next().unwrap_or("").to_string(),
            ))
        })
        .collect()
}

/// Checks the workspace against `api/unsafe.lock`. Returns the
/// missing-`SAFETY:` violations and the ledger drift; both empty means the
/// gate passes.
///
/// # Errors
///
/// Propagates I/O errors from source reads.
pub fn check_unsafe(root: &Path) -> io::Result<(Vec<UnsafeViolation>, Vec<UnsafeDrift>)> {
    let (sites, violations) = unsafe_sites(root)?;
    let lock_path = root.join(UNSAFE_LOCK);
    let Ok(doc) = fs::read_to_string(&lock_path) else {
        return Ok((violations, vec![UnsafeDrift::MissingLock]));
    };
    let locked = parse_lock(&doc);
    let mut drift = Vec::new();
    for site in &sites {
        match locked.iter().find(|(id, ..)| *id == site.id) {
            None => drift.push(UnsafeDrift::Added(site.clone())),
            Some((_, _, hash, obligation)) => {
                if *hash != format!("{:016x}", site.hash) {
                    drift.push(UnsafeDrift::Changed {
                        id: site.id.clone(),
                        what: "body hash".to_string(),
                    });
                } else if site.obligation.as_deref().unwrap_or("") != obligation {
                    drift.push(UnsafeDrift::Changed {
                        id: site.id.clone(),
                        what: "obligation".to_string(),
                    });
                }
            }
        }
    }
    for (id, ..) in &locked {
        if !sites.iter().any(|s| &s.id == id) {
            drift.push(UnsafeDrift::Removed(id.clone()));
        }
    }
    Ok((violations, drift))
}

/// Regenerates `api/unsafe.lock` from the current workspace. Returns the
/// written path (relative to the workspace root) and the entry count.
///
/// # Errors
///
/// Propagates I/O errors from source reads or the lock write.
pub fn bless_unsafe(root: &Path) -> io::Result<(PathBuf, usize)> {
    let (sites, _) = unsafe_sites(root)?;
    let mut doc = String::from(
        "# Unsafe ledger — every `unsafe` construct in library code, generated by\n\
         # `cargo run -p seeker-lint -- --bless-unsafe`.\n\
         # One tab-separated row per construct: id, kind, span-normalized body hash,\n\
         # one-line SAFETY obligation. CI fails on any drift in either direction.\n",
    );
    for site in &sites {
        doc.push_str(&format!(
            "{}\t{}\t{:016x}\t{}\n",
            site.id,
            site.kind.as_str(),
            site.hash,
            site.obligation.as_deref().unwrap_or("")
        ));
    }
    let rel = PathBuf::from(UNSAFE_LOCK);
    if let Some(parent) = root.join(&rel).parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(root.join(&rel), doc)?;
    Ok((rel, sites.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workspace(lib: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!(
            "seeker-lint-unsafe-{}-{}",
            std::process::id(),
            lib.len()
        ));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/alpha/src")).expect("mkdir");
        fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n")
            .expect("write");
        fs::write(
            root.join("crates/alpha/Cargo.toml"),
            "[package]\nname = \"alpha\"\nversion = \"0.0.0\"\n",
        )
        .expect("write");
        fs::write(root.join("crates/alpha/src/lib.rs"), lib).expect("write");
        root
    }

    const ANNOTATED: &str = "//! A.\n#![deny(missing_docs)]\n\n/// Reads one byte.\npub fn peek(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid for reads.\n    unsafe { *p }\n}\n";

    #[test]
    fn annotated_unsafe_block_is_recorded_without_violation() {
        let root = workspace(ANNOTATED);
        let (sites, violations) = unsafe_sites(&root).expect("scan");
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].id, "alpha::peek#0");
        assert_eq!(sites[0].kind, UnsafeKind::Block);
        assert_eq!(sites[0].obligation.as_deref(), Some("caller guarantees p is valid for reads."));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_safety_comment_is_a_violation() {
        let root = workspace(
            "//! A.\n#![deny(missing_docs)]\n\n/// Reads one byte.\npub fn peek(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
        );
        let (sites, violations) = unsafe_sites(&root).expect("scan");
        assert_eq!(sites.len(), 1);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("SAFETY"), "{}", violations[0].message);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn test_region_unsafe_is_exempt() {
        let root = workspace(
            "//! A.\n#![deny(missing_docs)]\n\n#[cfg(test)]\nmod tests {\n    fn f(p: *const u8) -> u8 { unsafe { *p } }\n}\n",
        );
        let (sites, violations) = unsafe_sites(&root).expect("scan");
        assert!(sites.is_empty());
        assert!(violations.is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn bless_then_check_roundtrip_added_changed_and_stale_drift() {
        let root = workspace(ANNOTATED);
        // Missing lock is drift.
        let (_, drift) = check_unsafe(&root).expect("check");
        assert!(matches!(drift.as_slice(), [UnsafeDrift::MissingLock]));
        // Bless → clean.
        let (rel, n) = bless_unsafe(&root).expect("bless");
        assert_eq!(rel, PathBuf::from(UNSAFE_LOCK));
        assert_eq!(n, 1);
        let (violations, drift) = check_unsafe(&root).expect("check");
        assert!(violations.is_empty() && drift.is_empty(), "{drift:?}");
        // Editing the unsafe body is Changed drift.
        let lib = root.join("crates/alpha/src/lib.rs");
        fs::write(&lib, ANNOTATED.replace("*p", "*p.offset(0)")).expect("write");
        let (_, drift) = check_unsafe(&root).expect("check");
        assert!(
            matches!(drift.as_slice(), [UnsafeDrift::Changed { what, .. }] if what == "body hash"),
            "{drift:?}"
        );
        // A second unsafe construct is Added drift.
        fs::write(
            &lib,
            format!("{ANNOTATED}\n/// W.\npub fn poke(p: *mut u8) {{\n    // SAFETY: caller guarantees p is valid for writes.\n    unsafe {{ *p = 0 }}\n}}\n"),
        )
        .expect("write");
        let (_, drift) = check_unsafe(&root).expect("check");
        assert!(
            matches!(drift.as_slice(), [UnsafeDrift::Added(site)] if site.id == "alpha::poke#0"),
            "{drift:?}"
        );
        // Removing every unsafe construct leaves a stale entry.
        fs::write(
            &lib,
            "//! A.\n#![deny(missing_docs)]\n\n/// Safe now.\npub fn peek() -> u8 { 0 }\n",
        )
        .expect("write");
        let (_, drift) = check_unsafe(&root).expect("check");
        assert!(matches!(drift.as_slice(), [UnsafeDrift::Removed(id)] if id == "alpha::peek#0"));
        // Re-bless shrinks the ledger back to clean.
        let (_, n) = bless_unsafe(&root).expect("bless");
        assert_eq!(n, 0);
        assert!(check_unsafe(&root).expect("check").1.is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn reformatting_does_not_change_the_hash() {
        let root = workspace(ANNOTATED);
        let (a, _) = unsafe_sites(&root).expect("scan");
        let reformatted = ANNOTATED.replace("unsafe { *p }", "unsafe {\n        *p\n    }");
        fs::write(root.join("crates/alpha/src/lib.rs"), reformatted).expect("write");
        let (b, _) = unsafe_sites(&root).expect("scan");
        assert_eq!(a[0].hash, b[0].hash, "whitespace must not churn the ledger");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn unsafe_fn_and_impl_kinds_are_classified() {
        let root = workspace(
            "//! A.\n#![deny(missing_docs)]\n\n/// Raw slot.\npub struct Slot(u8);\n\n// SAFETY: Slot is a plain byte, no shared mutation.\nunsafe impl Sync for Slot {}\n\n/// Unchecked read.\n///\n// SAFETY: caller upholds the index bound.\npub unsafe fn get(s: &[u8], i: usize) -> u8 {\n    // SAFETY: forwarded from the caller contract.\n    unsafe { *s.get_unchecked(i) }\n}\n",
        );
        let (sites, violations) = unsafe_sites(&root).expect("scan");
        assert!(violations.is_empty(), "{violations:?}");
        let kinds: Vec<(&str, UnsafeKind)> =
            sites.iter().map(|s| (s.id.as_str(), s.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                ("alpha::Slot#0", UnsafeKind::Impl),
                ("alpha::get#0", UnsafeKind::Fn),
                ("alpha::get#1", UnsafeKind::Block),
            ],
        );
        let _ = fs::remove_dir_all(&root);
    }
}
