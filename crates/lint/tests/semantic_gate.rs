//! Integration tests for the semantic passes as CI gates: the compiled
//! binary's `--check-panics` bless→drift lifecycle, the `--hotpath`
//! allocation gate, the `unused-dep` layering rule, and cross-crate call
//! resolution with pinned `Resolved` vs `Ambiguous` edges.

use seeker_lint::{build_call_graph, CallTarget};

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Builds a throwaway workspace from `(relative path, content)` pairs,
/// returning its root. A workspace manifest is always written.
fn workspace(tag: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("seeker-lint-sem-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    write(&root, "Cargo.toml", "[workspace]\nmembers = [\"crates/*\"]\n");
    for (rel, content) in files {
        write(&root, rel, content);
    }
    root
}

fn write(root: &Path, rel: &str, content: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
    fs::write(path, content).expect("write fixture");
}

fn package(name: &str) -> String {
    format!("[package]\nname = \"{name}\"\nversion = \"0.0.0\"\n")
}

fn run(args: &[&str], root: &Path) -> (bool, String, String) {
    let bin = env!("CARGO_BIN_EXE_seeker-lint");
    let out = Command::new(bin).args(args).arg(root).output().expect("run seeker-lint");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn panics_lock_blesses_then_detects_added_and_stale_drift() {
    let root = workspace(
        "panics",
        &[
            ("crates/app/Cargo.toml", &package("app")),
            (
                "crates/app/src/lib.rs",
                "//! A.\n\nfn inner(x: Option<u32>) -> u32 { x.unwrap() }\n\n/// E.\npub fn entry(x: Option<u32>) -> u32 { inner(x) }\n\n/// Safe.\npub fn safe() -> u32 { 7 }\n",
            ),
        ],
    );

    // No lock yet: the gate must fail loudly, not pass vacuously.
    let (ok, stdout, _) = run(&["--check-panics"], &root);
    assert!(!ok, "expected failure before blessing");
    assert!(stdout.contains("panics.lock missing"), "stdout: {stdout}");

    // Bless: the transitive panic path is pinned, the check goes green.
    let (ok, _, stderr) = run(&["--bless-panics"], &root);
    assert!(ok, "bless failed: {stderr}");
    let lock = fs::read_to_string(root.join("api/panics.lock")).expect("read lock");
    assert!(lock.contains("app::entry"), "lock must pin the transitive path: {lock}");
    assert!(!lock.contains("app::safe"), "non-panicking fn must stay out: {lock}");
    let (ok, stdout, _) = run(&["--check-panics"], &root);
    assert!(ok, "expected clean check after blessing:\n{stdout}");

    // A new panic path without re-blessing is drift.
    let lib = root.join("crates/app/src/lib.rs");
    let mut source = fs::read_to_string(&lib).expect("read lib");
    source.push_str("\n/// F.\npub fn fresh(v: &[u32]) -> u32 { v[0] }\n");
    fs::write(&lib, &source).expect("write lib");
    let (ok, stdout, _) = run(&["--check-panics"], &root);
    assert!(!ok, "expected drift after adding a panic path");
    assert!(stdout.contains("new panic path: app::fresh"), "stdout: {stdout}");

    // Re-bless, then FIX the original panic: the stale entry is drift too —
    // the lock must shrink along with the panic set, not accrete.
    let (ok, _, stderr) = run(&["--bless-panics"], &root);
    assert!(ok, "re-bless failed: {stderr}");
    let fixed = source.replace("x.unwrap()", "x.unwrap_or(0)");
    fs::write(&lib, fixed).expect("write lib");
    let (ok, stdout, _) = run(&["--check-panics"], &root);
    assert!(!ok, "expected drift after fixing a blessed panic");
    assert!(stdout.contains("stale lock entry"), "stdout: {stdout}");
    assert!(stdout.contains("app::entry"), "stdout: {stdout}");

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn hotpath_gate_flags_loop_allocations_and_honors_sanctions() {
    // `path_count_profile` matches the HOT_PATHS table by suffix, so the
    // allocation inside the helper it calls must be flagged transitively.
    let dirty = workspace(
        "hot-dirty",
        &[
            ("crates/hot/Cargo.toml", &package("hot")),
            (
                "crates/hot/src/lib.rs",
                "//! H.\n\nfn helper(v: &[u32]) -> Vec<String> {\n    let mut out = Vec::new();\n    for x in v {\n        out.push(format!(\"{x}\"));\n    }\n    out\n}\n\n/// Hot root.\npub fn path_count_profile(v: &[u32]) -> Vec<String> { helper(v) }\n",
            ),
        ],
    );
    let (ok, stdout, _) = run(&["--hotpath"], &dirty);
    assert!(!ok, "expected hotpath failure:\n{stdout}");
    assert!(stdout.contains("[hot-alloc]"), "stdout: {stdout}");
    assert!(stdout.contains("format!"), "stdout: {stdout}");
    assert!(stdout.contains("hot via hot::path_count_profile"), "stdout: {stdout}");
    let _ = fs::remove_dir_all(&dirty);

    // The same allocation under a sanction comment — and any allocation in
    // a cold function — must pass.
    let clean = workspace(
        "hot-clean",
        &[
            ("crates/hot/Cargo.toml", &package("hot")),
            (
                "crates/hot/src/lib.rs",
                "//! H.\n\n/// Cold: allocates freely.\npub fn cold(v: &[u32]) -> Vec<String> {\n    let mut out = Vec::new();\n    for x in v {\n        out.push(format!(\"{x}\"));\n    }\n    out\n}\n\n/// Hot root, sanctioned.\npub fn path_count_profile(v: &[u32]) -> Vec<String> {\n    let mut out = Vec::new();\n    for x in v {\n        // Bounded by the profile width. lint:allow(hot-alloc)\n        out.push(format!(\"{x}\"));\n    }\n    out\n}\n",
            ),
        ],
    );
    let (ok, stdout, _) = run(&["--hotpath"], &clean);
    assert!(ok, "expected clean hotpath:\n{stdout}");
    let _ = fs::remove_dir_all(&clean);
}

#[test]
fn unused_dependency_is_flagged_in_layering_and_allowed_by_comment() {
    let helper_files: [(&str, &str); 2] = [
        ("crates/helper/Cargo.toml", &package("helper-lib")),
        ("crates/helper/src/lib.rs", "//! Helper.\n\n/// Id.\npub fn id(x: u32) -> u32 { x }\n"),
    ];

    // Declared but never mentioned: flagged.
    let mut files = helper_files.to_vec();
    let consumer_manifest = format!(
        "{}\n[dependencies]\nhelper-lib = {{ path = \"../helper\" }}\n",
        package("consumer")
    );
    files.push(("crates/consumer/Cargo.toml", &consumer_manifest));
    files.push(("crates/consumer/src/lib.rs", "//! C.\n\n/// One.\npub fn one() -> u32 { 1 }\n"));
    let root = workspace("unused-dep", &files);
    let (ok, stdout, _) = run(&["--layering"], &root);
    assert!(!ok, "expected layering failure");
    assert!(stdout.contains("[unused-dep]"), "stdout: {stdout}");
    assert!(stdout.contains("`helper-lib`"), "stdout: {stdout}");
    let _ = fs::remove_dir_all(&root);

    // Actually used: silent.
    let mut files = helper_files.to_vec();
    files.push(("crates/consumer/Cargo.toml", &consumer_manifest));
    files.push((
        "crates/consumer/src/lib.rs",
        "//! C.\n\n/// One.\npub fn one() -> u32 { helper_lib::id(1) }\n",
    ));
    let root = workspace("used-dep", &files);
    let (_, stdout, _) = run(&["--layering"], &root);
    assert!(!stdout.contains("[unused-dep]"), "stdout: {stdout}");
    let _ = fs::remove_dir_all(&root);

    // Declared, unused, but sanctioned on the manifest line above: silent.
    let mut files = helper_files.to_vec();
    let sanctioned = format!(
        "{}\n[dependencies]\n# Wired in the next milestone. # lint:allow(unused-dep)\nhelper-lib = {{ path = \"../helper\" }}\n",
        package("consumer")
    );
    files.push(("crates/consumer/Cargo.toml", &sanctioned));
    files.push(("crates/consumer/src/lib.rs", "//! C.\n\n/// One.\npub fn one() -> u32 { 1 }\n"));
    let root = workspace("allowed-dep", &files);
    let (_, stdout, _) = run(&["--layering"], &root);
    assert!(!stdout.contains("[unused-dep]"), "stdout: {stdout}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn cross_crate_calls_pin_resolved_and_ambiguous_edges() {
    // Two crates: `base` defines a free fn, an associated fn, and two types
    // sharing a method name; `front` calls across the crate boundary via a
    // use-alias, a Type::fn path, and an unqualified method.
    let root = workspace(
        "xcrate",
        &[
            ("crates/base/Cargo.toml", &package("base")),
            (
                "crates/base/src/lib.rs",
                "//! B.\n\n/// Free.\npub fn free_helper(x: u32) -> u32 { x }\n\n/// S.\npub struct S;\nimpl S {\n    /// New.\n    pub fn make() -> S { S }\n    /// Shared name.\n    pub fn poll(&self) -> u32 { 1 }\n}\n\n/// T.\npub struct T;\nimpl T {\n    /// Shared name.\n    pub fn poll(&self) -> u32 { 2 }\n}\n",
            ),
            ("crates/front/Cargo.toml", &package("front")),
            (
                "crates/front/src/lib.rs",
                "//! F.\nuse base::free_helper as fh;\nuse base::S;\n\n/// Aliased cross-crate free call.\npub fn a(x: u32) -> u32 { fh(x) }\n\n/// Type::fn cross-crate call.\npub fn b() -> S { S::make() }\n\n/// Method call with two candidate impls.\npub fn c(s: &S) -> u32 { s.poll() }\n",
            ),
        ],
    );
    let graph = build_call_graph(&root).expect("graph");

    let idx = |id: &str| graph.find(id).unwrap_or_else(|| panic!("missing node {id}"));
    let target_of = |caller: &str| {
        let node = &graph.nodes[idx(caller)];
        assert_eq!(node.calls.len(), 1, "expected one edge from {caller}: {:?}", node.calls);
        node.calls[0].target.clone()
    };

    // The use-alias and the Type::fn path each resolve to exactly one node.
    assert_eq!(target_of("front::a"), CallTarget::Resolved(idx("base::free_helper")));
    assert_eq!(target_of("front::b"), CallTarget::Resolved(idx("base::S::make")));

    // `.poll()` matches impls on both S and T: the resolver must keep both
    // candidates (conservative over-approximation), never drop the edge.
    match target_of("front::c") {
        CallTarget::Ambiguous(mut hits) => {
            hits.sort_unstable();
            let mut expected = vec![idx("base::S::poll"), idx("base::T::poll")];
            expected.sort_unstable();
            assert_eq!(hits, expected);
        }
        other => panic!("expected Ambiguous, got {other:?}"),
    }

    let _ = fs::remove_dir_all(&root);
}
