//! Lexer regression tests over the fixture corpus, plus an agreement check
//! between the token-based rule matchers and a reimplementation of the v1
//! line-level engine (masked-substring search). The corpus deliberately
//! contains every masker edge case — raw strings with hashes, nested block
//! comments, `'\''` literals, `\`-newline continuations — so a lexer
//! regression shows up as either a losslessness failure or a token/line
//! disagreement.

use seeker_lint::lex;
use seeker_lint::mask::mask_source;
use seeker_lint::rules::{lint_source, FileClass, Rule};
use seeker_lint::tokens::TokenKind;

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

const CORPUS: &[&str] = &[
    "lexer_edges.rs",
    "seeded_violations.rs",
    "seeded_features.rs",
    "seeded_lib_root.rs",
    "seeded_determinism.rs",
];

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

#[test]
fn corpus_lexes_losslessly() {
    for name in CORPUS {
        let source = fixture(name);
        let tokens = lex(&source);
        let rebuilt: String = tokens.iter().map(|t| t.text).collect();
        assert_eq!(rebuilt, source, "{name}: token concatenation must rebuild the source");
        // Spans are contiguous and line numbers match the newline count.
        let mut expected_start = 0usize;
        for t in &tokens {
            assert_eq!(t.start, expected_start, "{name}: gap before {t:?}");
            expected_start = t.end();
            let line = 1 + source[..t.start].matches('\n').count();
            assert_eq!(t.line, line, "{name}: wrong line for {t:?}");
        }
        assert_eq!(expected_start, source.len(), "{name}: trailing gap");
    }
}

#[test]
fn lexer_edges_tokens_are_classified_correctly() {
    let source = fixture("lexer_edges.rs");
    let tokens = lex(&source);
    let texts: Vec<(TokenKind, &str)> = tokens.iter().map(|t| (t.kind, t.text)).collect();

    // Nested block comment is one token, rule-bait safely inside.
    assert!(texts
        .iter()
        .any(|(k, x)| *k == TokenKind::BlockComment && x.contains("deeper .unwrap()")));
    // Raw strings with zero, one and two hashes each stay one token.
    assert!(texts.iter().any(|(k, x)| *k == TokenKind::RawStr && x.contains("unimplemented!")));
    assert!(texts.iter().any(|(k, x)| *k == TokenKind::RawStr && x.contains(r##"two "# hashes"##)));
    assert!(texts
        .iter()
        .any(|(k, x)| *k == TokenKind::RawStr && x.starts_with("br#") && x.contains("panic!")));
    // The `\`-newline continuation stays inside one Str token.
    assert!(texts
        .iter()
        .any(|(k, x)| *k == TokenKind::Str && x.contains("continuation") && x.contains('\n')));
    // Char literals, including the escaped quote, and byte chars.
    assert!(texts.iter().any(|(k, x)| *k == TokenKind::Char && *x == "'\"'"));
    assert!(texts.iter().any(|(k, x)| *k == TokenKind::Char && *x == r"'\''"));
    assert!(texts.iter().any(|(k, x)| *k == TokenKind::Char && *x == "b'x'"));
    // Lifetimes and labels are not char literals.
    assert!(texts.iter().any(|(k, x)| *k == TokenKind::Lifetime && *x == "'a"));
    assert!(texts.iter().any(|(k, x)| *k == TokenKind::Lifetime && *x == "'outer"));
    // Raw identifiers are idents, not raw strings.
    assert!(texts.iter().any(|(k, x)| *k == TokenKind::Ident && *x == "r#type"));
    // `1..4` splits into Int/Punct/Int; `1.5_f64` and `2e3` are floats.
    assert!(texts.iter().any(|(k, x)| *k == TokenKind::Punct && *x == ".."));
    assert!(texts.iter().any(|(k, x)| *k == TokenKind::Float && *x == "1.5_f64"));
    assert!(texts.iter().any(|(k, x)| *k == TokenKind::Float && *x == "2e3"));
    assert!(texts.iter().any(|(k, x)| *k == TokenKind::Int && *x == "0x_1f"));
    // Unicode identifier survives as a single token.
    assert!(texts.iter().any(|(k, x)| *k == TokenKind::Ident && *x == "größe"));
}

#[test]
fn lexer_edges_fixture_is_rule_clean() {
    // Everything suspicious in the file lives inside comments or literals,
    // so the rules must report nothing.
    let source = fixture("lexer_edges.rs");
    let violations = lint_source(Path::new("crates/x/src/edges.rs"), FileClass::Library, &source);
    assert!(
        violations.is_empty(),
        "expected no violations:\n{}",
        violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}

/// The v1 engine, reconstructed: substring search over the masked source,
/// line-based `lint:allow` escapes, and a trailing `#[cfg(test)]` region.
/// Only rules whose v1 matcher was a plain substring test are modelled.
fn legacy_rule_lines(source: &str, rule: Rule) -> BTreeSet<usize> {
    let patterns: &[&str] = match rule {
        Rule::NoPanic => &[".unwrap()", ".expect(", "panic!", "todo!", "unimplemented!"],
        Rule::ThreadSpawn => &["thread::spawn", "thread::scope"],
        Rule::NoPrint => &["println!", "eprintln!", "print!", "eprint!"],
        _ => panic!("no legacy model for {rule:?}"),
    };
    let masked = mask_source(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut test_region_start = usize::MAX;
    for (idx, line) in raw_lines.iter().enumerate() {
        let t = line.trim();
        if t.starts_with("#[cfg(") && t.contains("test") {
            test_region_start = idx;
            break;
        }
    }
    let allow_marker = format!("lint:allow({})", rule.id());
    let mut hits = BTreeSet::new();
    for (idx, line) in masked.lines().enumerate() {
        if idx >= test_region_start {
            continue;
        }
        if !patterns.iter().any(|p| line.contains(p)) {
            continue;
        }
        let allowed = raw_lines.get(idx).is_some_and(|l| l.contains(&allow_marker))
            || (idx > 0 && raw_lines.get(idx - 1).is_some_and(|l| l.contains(&allow_marker)));
        if !allowed {
            hits.insert(idx + 1);
        }
    }
    hits
}

#[test]
fn token_rules_agree_with_the_legacy_line_engine() {
    for name in CORPUS {
        let source = fixture(name);
        let violations =
            lint_source(Path::new("crates/x/src/planted.rs"), FileClass::Library, &source);
        for rule in [Rule::NoPanic, Rule::ThreadSpawn, Rule::NoPrint] {
            let token_lines: BTreeSet<usize> =
                violations.iter().filter(|v| v.rule == rule).map(|v| v.line).collect();
            let legacy_lines = legacy_rule_lines(&source, rule);
            assert_eq!(
                token_lines,
                legacy_lines,
                "{name}: token and legacy engines disagree on {}",
                rule.id()
            );
        }
    }
}
