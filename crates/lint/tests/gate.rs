//! Integration tests for the lint gate: plants the fixture sources in a
//! synthetic workspace, runs the pass (library API and compiled binary),
//! and asserts the seeded violations — and only those — are reported.

use seeker_lint::{lint_workspace, Rule};

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

/// Builds a throwaway workspace containing the seeded fixture files and a
/// clean crate, returning its root.
fn seeded_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("seeker-lint-gate-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let write = |rel: &str, content: &str| {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, content).expect("write fixture");
    };
    write("Cargo.toml", "[workspace]\nmembers = [\"crates/*\"]\n");
    write(
        "crates/dirty/src/lib.rs",
        &format!(
            "//! Dirty fixture crate.\n#![deny(missing_docs)]\nmod seeded;\nmod features;\n{}",
            ""
        ),
    );
    write("crates/dirty/src/seeded.rs", &fixture("seeded_violations.rs"));
    write("crates/dirty/src/features.rs", &fixture("seeded_features.rs"));
    write("crates/headless/src/lib.rs", &fixture("seeded_lib_root.rs"));
    write(
        "crates/clean/src/lib.rs",
        "//! Clean fixture crate.\n#![deny(missing_docs)]\n\n/// Doubles.\npub fn double(x: u32) -> u32 { x * 2 }\n",
    );
    root
}

#[test]
fn seeded_workspace_reports_exactly_the_planted_violations() {
    let root = seeded_workspace("api");
    let violations = lint_workspace(&root).expect("lint");
    let got: Vec<(String, usize, Rule)> = violations
        .iter()
        .map(|v| (v.file.to_string_lossy().replace('\\', "/"), v.line, v.rule))
        .collect();
    let expected = vec![
        ("crates/dirty/src/features.rs".to_string(), 5, Rule::FloatCast),
        ("crates/dirty/src/seeded.rs".to_string(), 7, Rule::NoPanic),
        ("crates/dirty/src/seeded.rs".to_string(), 11, Rule::NoPanic),
        ("crates/dirty/src/seeded.rs".to_string(), 15, Rule::NoPanic),
        ("crates/dirty/src/seeded.rs".to_string(), 19, Rule::FloatEq),
        ("crates/dirty/src/seeded.rs".to_string(), 36, Rule::ThreadSpawn),
        ("crates/headless/src/lib.rs".to_string(), 1, Rule::DenyHeader),
        ("crates/headless/src/lib.rs".to_string(), 9, Rule::UndocumentedPub),
    ];
    assert_eq!(
        got,
        expected,
        "full report:\n{}",
        violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn binary_exits_nonzero_on_violations_and_zero_on_clean_tree() {
    let bin = env!("CARGO_BIN_EXE_seeker-lint");

    let dirty = seeded_workspace("bin");
    let out = Command::new(bin).arg(&dirty).output().expect("run seeker-lint");
    assert!(!out.status.success(), "expected failure on seeded workspace");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[no-panic]"), "stdout: {stdout}");
    assert!(stdout.contains("seeded.rs:7"), "stdout: {stdout}");
    let _ = fs::remove_dir_all(&dirty);

    // The real workspace (two levels above this crate) must be clean.
    let real_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let out = Command::new(bin).arg(real_root).output().expect("run seeker-lint");
    assert!(out.status.success(), "workspace not clean:\n{}", String::from_utf8_lossy(&out.stdout));

    // A mistyped root must not report "clean": that would disarm the gate.
    let out = Command::new(bin).arg("/no/such/workspace").output().expect("run seeker-lint");
    assert_eq!(out.status.code(), Some(2), "expected exit 2 on a nonexistent root");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not a workspace root"), "stderr: {stderr}");
}
