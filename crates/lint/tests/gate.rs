//! Integration tests for the lint gate: plants the fixture sources in a
//! synthetic workspace, runs the pass (library API and compiled binary),
//! and asserts the seeded violations — and only those — are reported.

use seeker_lint::{lint_workspace, Rule};

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

/// Builds a throwaway workspace containing the seeded fixture files and a
/// clean crate, returning its root.
fn seeded_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("seeker-lint-gate-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let write = |rel: &str, content: &str| {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, content).expect("write fixture");
    };
    write("Cargo.toml", "[workspace]\nmembers = [\"crates/*\"]\n");
    // Per-crate manifests so the layering and API-lockfile passes (which
    // enumerate packages) see the synthetic crates too.
    for krate in ["dirty", "headless", "clean"] {
        write(
            &format!("crates/{krate}/Cargo.toml"),
            &format!("[package]\nname = \"{krate}\"\nversion = \"0.0.0\"\n"),
        );
    }
    write(
        "crates/dirty/src/lib.rs",
        &format!(
            "//! Dirty fixture crate.\n#![deny(missing_docs)]\nmod seeded;\nmod features;\n{}",
            ""
        ),
    );
    write("crates/dirty/src/seeded.rs", &fixture("seeded_violations.rs"));
    write("crates/dirty/src/features.rs", &fixture("seeded_features.rs"));
    write("crates/headless/src/lib.rs", &fixture("seeded_lib_root.rs"));
    write(
        "crates/clean/src/lib.rs",
        "//! Clean fixture crate.\n#![deny(missing_docs)]\n\n/// Doubles.\npub fn double(x: u32) -> u32 { x * 2 }\n",
    );
    root
}

#[test]
fn seeded_workspace_reports_exactly_the_planted_violations() {
    let root = seeded_workspace("api");
    let violations = lint_workspace(&root).expect("lint");
    let got: Vec<(String, usize, Rule)> = violations
        .iter()
        .map(|v| (v.file.to_string_lossy().replace('\\', "/"), v.line, v.rule))
        .collect();
    let expected = vec![
        ("crates/dirty/src/features.rs".to_string(), 5, Rule::FloatCast),
        ("crates/dirty/src/seeded.rs".to_string(), 7, Rule::NoPanic),
        ("crates/dirty/src/seeded.rs".to_string(), 11, Rule::NoPanic),
        ("crates/dirty/src/seeded.rs".to_string(), 15, Rule::NoPanic),
        ("crates/dirty/src/seeded.rs".to_string(), 19, Rule::FloatEq),
        ("crates/dirty/src/seeded.rs".to_string(), 36, Rule::ThreadSpawn),
        ("crates/headless/src/lib.rs".to_string(), 1, Rule::DenyHeader),
        ("crates/headless/src/lib.rs".to_string(), 9, Rule::UndocumentedPub),
    ];
    assert_eq!(
        got,
        expected,
        "full report:\n{}",
        violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn determinism_rules_report_exactly_the_planted_violations() {
    let root =
        std::env::temp_dir().join(format!("seeker-lint-gate-determinism-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let write = |rel: &str, content: &str| {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, content).expect("write fixture");
    };
    write("Cargo.toml", "[workspace]\nmembers = [\"crates/*\"]\n");
    write(
        "crates/clockwork/src/lib.rs",
        "//! Determinism fixture crate.\n#![deny(missing_docs)]\nmod determinism;\n",
    );
    write("crates/clockwork/src/determinism.rs", &fixture("seeded_determinism.rs"));
    let violations = lint_workspace(&root).expect("lint");
    let got: Vec<(usize, Rule)> = violations
        .iter()
        .filter(|v| v.file.to_string_lossy().ends_with("determinism.rs"))
        .map(|v| (v.line, v.rule))
        .collect();
    let expected = vec![
        (6, Rule::NoHashIter),
        (9, Rule::NoSystemTime),
        (14, Rule::NoSystemTime),
        (18, Rule::NoUnseededRng),
    ];
    assert_eq!(
        got,
        expected,
        "full report:\n{}",
        violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn layering_pass_flags_synthetic_crates_as_undeclared() {
    // A synthetic workspace's crates are not in the real LAYER_DAG, so the
    // layering pass must flag each one rather than silently skipping it.
    let bin = env!("CARGO_BIN_EXE_seeker-lint");
    let root = seeded_workspace("layering");
    let out = Command::new(bin).arg("--layering").arg(&root).output().expect("run seeker-lint");
    assert!(!out.status.success(), "expected layering failure");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[layering]"), "stdout: {stdout}");
    assert!(stdout.contains("not declared in the layering DAG"), "stdout: {stdout}");
    for krate in ["dirty", "headless", "clean"] {
        assert!(stdout.contains(&format!("`{krate}`")), "missing {krate} in: {stdout}");
    }
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn api_lockfile_blesses_then_detects_drift() {
    let bin = env!("CARGO_BIN_EXE_seeker-lint");
    let root = seeded_workspace("apilock");

    // Unblessed workspace: --check-api reports the missing snapshots.
    let out = Command::new(bin).arg("--check-api").arg(&root).output().expect("run seeker-lint");
    assert!(!out.status.success(), "expected drift before blessing");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[api-lock]"), "stdout: {stdout}");
    assert!(stdout.contains("missing snapshot"), "stdout: {stdout}");

    // Bless, then the check passes.
    let out = Command::new(bin).arg("--bless-api").arg(&root).output().expect("run seeker-lint");
    assert!(out.status.success(), "bless failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(root.join("api/clean.api").is_file(), "snapshot file written");
    let snapshot = fs::read_to_string(root.join("api/clean.api")).expect("read snapshot");
    assert!(snapshot.contains("pub fn double(x: u32) -> u32"), "snapshot: {snapshot}");
    let out = Command::new(bin).arg("--check-api").arg(&root).output().expect("run seeker-lint");
    assert!(
        out.status.success(),
        "expected clean check after blessing:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // A public-API change without re-blessing is drift.
    let lib = root.join("crates/clean/src/lib.rs");
    let mut source = fs::read_to_string(&lib).expect("read clean lib");
    source.push_str("\n/// Triples.\npub fn triple(x: u32) -> u32 { x * 3 }\n");
    fs::write(&lib, source).expect("write clean lib");
    let out = Command::new(bin).arg("--check-api").arg(&root).output().expect("run seeker-lint");
    assert!(!out.status.success(), "expected drift after API change");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[api-lock]"), "stdout: {stdout}");
    assert!(stdout.contains("pub fn triple(x: u32) -> u32"), "stdout: {stdout}");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn binary_exits_nonzero_on_violations_and_zero_on_clean_tree() {
    let bin = env!("CARGO_BIN_EXE_seeker-lint");

    let dirty = seeded_workspace("bin");
    let out = Command::new(bin).arg(&dirty).output().expect("run seeker-lint");
    assert!(!out.status.success(), "expected failure on seeded workspace");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[no-panic]"), "stdout: {stdout}");
    assert!(stdout.contains("seeded.rs:7"), "stdout: {stdout}");
    let _ = fs::remove_dir_all(&dirty);

    // The real workspace (two levels above this crate) must be clean.
    let real_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let out = Command::new(bin).arg(real_root).output().expect("run seeker-lint");
    assert!(out.status.success(), "workspace not clean:\n{}", String::from_utf8_lossy(&out.stdout));

    // A mistyped root must not report "clean": that would disarm the gate.
    let out = Command::new(bin).arg("/no/such/workspace").output().expect("run seeker-lint");
    assert_eq!(out.status.code(), Some(2), "expected exit 2 on a nonexistent root");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not a workspace root"), "stderr: {stderr}");
}
