//! Property tests for the item-tree parser's lossless invariant: for any
//! input — well-formed items assembled from snippets, outright byte soup,
//! or every real source file of this workspace — the parsed top-level item
//! spans chain contiguously from byte 0, the trailing tail completes the
//! file, and concatenating the span texts rebuilds the input exactly.
//! Child items obey the same chaining one level down inside braced bodies.

use proptest::collection::vec;
use proptest::prelude::*;
use seeker_lint::{parse_source, Item};

use std::fs;
use std::path::Path;

/// Item-position constructs covering every [`seeker_lint::ItemKind`], plus
/// degenerate fragments the parser must absorb without losing bytes.
const SNIPPETS: &[&str] = &[
    "fn f() { x.unwrap() }",
    "pub fn g<T: Clone>(t: T) -> Vec<T> { vec![t] }",
    "pub(crate) const fn three() -> u32 { 3 }",
    "extern \"C\" fn cb(x: u32) {}",
    "struct Unit;",
    "pub struct Tup(u32, f64);",
    "struct Braced { a: u32, b: Vec<String> }",
    "enum E { A, B(u8), C { x: i32 } }",
    "union U { a: u32, b: f32 }",
    "mod empty {}",
    "mod nested { mod deeper { fn h() {} } }",
    "mod decl;",
    "trait T { fn req(&self); fn def(&self) -> u8 { 0 } }",
    "impl Foo { pub fn new() -> Foo { Foo } }",
    "impl Display for Foo { fn fmt(&self) -> String { String::new() } }",
    "impl<T: Ord> Wrapper<T> { fn get(&self) -> &T { &self.0 } }",
    "use std::collections::{BTreeMap, BTreeSet as Set};",
    "use crate::module::*;",
    "extern crate alloc;",
    "type Pair = (u32, u32);",
    "pub type Result<T> = std::result::Result<T, Error>;",
    "const N: usize = 4;",
    "static GREETING: &str = \"hi\";",
    "macro_rules! m { () => {}; ($x:expr) => { $x }; }",
    "seeker_obs::declare! { counters }",
    "#[derive(Debug, Clone)]\nstruct WithAttr { f: u8 }",
    "#[cfg(test)]\nmod tests { fn t() { assert!(true); } }",
    "/// Doc comment with code: `panic!()`.\nfn documented() {}",
    "#![allow(dead_code)]",
    "fn generics_soup<const K: usize>(a: [u8; K]) -> impl Iterator<Item = u8> { a.into_iter() }",
    "let not_an_item = 1;",
    "} stray close",
    "fn unterminated() {",
    "\"unterminated string",
    "r#\"raw \" body\"#",
    "/* unclosed comment",
];

const SEPARATORS: &[&str] = &["\n", "\n\n", " ", "", "\t\n"];

/// Recursively checks the chaining invariant for one item level: spans are
/// contiguous from `start`, each child's span nests inside its parent, and
/// every item's span is non-degenerate (`start <= end`).
fn assert_chained(items: &[Item], start: usize, end: usize) -> Result<(), TestCaseError> {
    let mut cursor = start;
    for item in items {
        prop_assert_eq!(
            item.span_start,
            cursor,
            "gap or overlap before {:?} `{}`",
            item.kind,
            item.name
        );
        prop_assert!(item.span_end >= item.span_start, "negative span on `{}`", item.name);
        prop_assert!(item.span_end <= end, "child `{}` escapes its parent span", item.name);
        if !item.children.is_empty() {
            // Children tile a sub-range of the parent body: contiguous among
            // themselves, strictly inside the parent's span.
            let first = item.children[0].span_start;
            prop_assert!(first >= item.span_start, "child starts before parent `{}`", item.name);
            assert_chained(&item.children, first, item.span_end)?;
        }
        cursor = item.span_end;
    }
    Ok(())
}

/// Checks the full lossless contract for one source file.
fn assert_lossless(source: &str) -> Result<(), TestCaseError> {
    let tree = parse_source(source);
    prop_assert_eq!(tree.source_len, source.len());
    // Top level: items chain from byte 0 and the trailing tail completes
    // the file.
    let last_end = tree.items.last().map_or(0, |it| it.span_end);
    prop_assert_eq!(tree.trailing_start, last_end, "trailing tail must start at the last span");
    prop_assert!(tree.trailing_start <= source.len());
    assert_chained(&tree.items, 0, source.len())?;
    // The reconstruction itself: span texts plus the tail rebuild the file.
    let mut rebuilt = String::new();
    for item in &tree.items {
        rebuilt.push_str(&source[item.span_start..item.span_end]);
    }
    rebuilt.push_str(&source[tree.trailing_start..]);
    prop_assert!(rebuilt == source, "span concatenation must rebuild the source");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn snippet_assemblies_parse_losslessly(
        parts in vec((0usize..SNIPPETS.len(), 0usize..SEPARATORS.len()), 0..16),
    ) {
        let mut source = String::new();
        for &(snippet, sep) in &parts {
            source.push_str(SNIPPETS[snippet]);
            source.push_str(SEPARATORS[sep]);
        }
        assert_lossless(&source)?;
    }

    #[test]
    fn unicode_soup_parses_losslessly(codes in vec(any::<u32>(), 0..120)) {
        let source: String = codes
            .iter()
            .map(|&c| char::from_u32(c % 0xD800).unwrap_or('\u{FFFD}'))
            .collect();
        assert_lossless(&source)?;
    }

    #[test]
    fn ascii_soup_parses_losslessly(bytes in vec(any::<u8>(), 0..160)) {
        // Dense ASCII soup maximizes brace/keyword boundary abuse: stray
        // closers, half-open generics, quote and hash runs.
        let source: String = bytes.iter().map(|&b| char::from(b % 0x80)).collect();
        assert_lossless(&source)?;
    }
}

/// The invariant must hold on real code, not just generated soup: every
/// source file of this workspace round-trips through the parser.
#[test]
fn every_workspace_source_file_parses_losslessly() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().and_then(Path::parent).unwrap();
    let mut stack = vec![root.join("crates"), root.join("tests")];
    let mut checked = 0usize;
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> =
            fs::read_dir(&dir).expect("read_dir").map(|e| e.expect("entry").path()).collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let source = fs::read_to_string(&path).expect("read source");
                assert_lossless(&source)
                    .unwrap_or_else(|e| panic!("{} violates losslessness: {e:?}", path.display()));
                checked += 1;
            }
        }
    }
    assert!(checked > 50, "expected to sweep the whole workspace, saw {checked} files");
}
