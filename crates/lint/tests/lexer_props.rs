//! Property tests for the lexer's losslessness contract: for *any* input —
//! well-formed Rust assembled from snippets or outright byte soup — the
//! lexed tokens tile the source exactly (concatenating their texts rebuilds
//! the input, spans are contiguous, line numbers equal one plus the number
//! of preceding newlines).

use proptest::collection::vec;
use proptest::prelude::*;
use seeker_lint::lex;

/// Rust-ish fragments covering every token class the lexer distinguishes,
/// including the masker edge cases (raw strings, nested comments, escaped
/// quotes, continuations) and pathological partial tokens.
const SNIPPETS: &[&str] = &[
    "fn f() { x.unwrap() }",
    "let s = \"a\\\"b\";",
    "let s = \"two \\\n lines\";",
    "// line comment panic!()\n",
    "/// doc .expect(\"x\")\n",
    "/* block == 1.0 */",
    "/* nested /* deep */ outer */",
    "r#\"raw \" string\"#",
    "r##\"two \"# hashes\"##",
    "b\"bytes\"",
    "br#\"raw bytes\"#",
    "'x'",
    "'\\''",
    "'\\n'",
    "b'q'",
    "'static",
    "'outer: loop {}",
    "r#type",
    "1..4",
    "1.5_f64",
    "2e3",
    "1f64",
    "0x_1f",
    "0b1010",
    "7u64.max(3)",
    "a <<= 1; b >>= 2; c ..= 3",
    "x::<Vec<u8>>()",
    "größe ≠ ±",
    "#[cfg(test)]",
    "\"unterminated",
    "/* unterminated",
    "r#\"unterminated",
    "'",
    "\\",
];

const SEPARATORS: &[&str] = &[" ", "\n", "", "\t", ";\n"];

/// Checks the full losslessness contract for one input.
fn assert_lossless(source: &str) -> Result<(), TestCaseError> {
    let tokens = lex(source);
    let rebuilt: String = tokens.iter().map(|t| t.text).collect();
    prop_assert!(rebuilt == source, "token concatenation must rebuild {source:?}, got {rebuilt:?}");
    let mut expected_start = 0usize;
    for t in &tokens {
        prop_assert_eq!(t.start, expected_start, "gap or overlap before {:?}", t);
        expected_start = t.end();
        let line = 1 + source[..t.start].matches('\n').count();
        prop_assert_eq!(t.line, line, "wrong line number for {:?}", t);
    }
    prop_assert_eq!(expected_start, source.len(), "trailing gap");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn snippet_assemblies_lex_losslessly(
        parts in vec((0usize..SNIPPETS.len(), 0usize..SEPARATORS.len()), 0..24),
    ) {
        let mut source = String::new();
        for &(snippet, sep) in &parts {
            source.push_str(SNIPPETS[snippet]);
            source.push_str(SEPARATORS[sep]);
        }
        assert_lossless(&source)?;
    }

    #[test]
    fn unicode_soup_lexes_losslessly(codes in vec(any::<u32>(), 0..120)) {
        // Map arbitrary u32s onto the low planes (skipping the surrogate
        // range), so multi-byte UTF-8 and controls are exercised.
        let source: String = codes
            .iter()
            .map(|&c| char::from_u32(c % 0xD800).unwrap_or('\u{FFFD}'))
            .collect();
        assert_lossless(&source)?;
    }

    #[test]
    fn ascii_soup_lexes_losslessly(bytes in vec(any::<u8>(), 0..160)) {
        // Dense ASCII punctuation soup: maximizes operator/partial-token
        // boundary coverage (quotes, backslashes, hash runs, dots).
        let source: String = bytes.iter().map(|&b| char::from(b % 0x80)).collect();
        assert_lossless(&source)?;
    }
}
