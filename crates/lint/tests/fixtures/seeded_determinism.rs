//! Lint fixture: a library file seeded with one violation per determinism
//! rule. Never compiled — consumed by `tests/gate.rs`, which plants it in a
//! synthetic workspace and asserts the pass reports exactly the seeded
//! lines.

use std::collections::HashMap; // seeded: no-hash-iter (line 6)

fn wall_clock_ms() -> u128 {
    let now = std::time::SystemTime::now(); // seeded: no-system-time (line 9)
    now.elapsed().map(|d| d.as_millis()).unwrap_or(0)
}

fn stopwatch() -> std::time::Instant {
    std::time::Instant::now() // seeded: no-system-time (line 14)
}

fn roll_unseeded() -> u64 {
    let mut rng = rand::thread_rng(); // seeded: no-unseeded-rng (line 18)
    rng.next_u64()
}

fn roll_seeded() -> u64 {
    let mut rng = StdRng::seed_from_u64(42); // ok: explicitly seeded
    rng.next_u64()
}

fn sanctioned_lookup_table() -> usize {
    // lint:allow(no-hash-iter) -- fixture: suppressed, must NOT be reported
    let table: HashMap<u32, u32> = HashMap::new();
    table.len()
}

fn mentions_in_text() -> &'static str {
    // HashMap, SystemTime and thread_rng() in comments/strings do not count.
    "HashMap SystemTime Instant::now thread_rng OsRng"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_use_hash_and_clocks() {
        let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let _ = (m, std::time::Instant::now());
    }
}
