//! Lint fixture: a library file seeded with one violation per rule that
//! applies to plain library code. Never compiled — consumed by
//! `tests/gate.rs`, which plants it in a synthetic workspace and asserts
//! the pass reports exactly the seeded lines.

fn takes_first(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // seeded: no-panic (line 7)
}

fn loud_failure() {
    panic!("seeded: no-panic (line 11)");
}

fn not_written_yet() -> u32 {
    todo!() // seeded: no-panic (line 15)
}

fn is_origin(x: f64) -> bool {
    x == 0.0 // seeded: float-eq (line 19)
}

fn sanctioned(x: Option<u32>) -> u32 {
    x.unwrap() // lint:allow(no-panic) -- fixture: suppressed, must NOT be reported
}

fn epsilon_ok(x: f64) -> bool {
    (x - 1.0).abs() < 1e-9
}

fn mentions_in_text() -> &'static str {
    // A panic!("...") or .unwrap() in comments and strings must not count.
    "contains panic!(no) and .unwrap() but only as text"
}

fn fans_out_badly() {
    std::thread::scope(|s| { let _ = s; }); // seeded: thread-spawn (line 36)
}

fn sanctioned_pool_shim() {
    // lint:allow(thread-spawn) -- fixture: suppressed, must NOT be reported
    std::thread::spawn(|| {}).join().ok();
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap_freely() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
        assert!(1.0f64 == 1.0f64);
    }
}
