//! Lexer fixture: every edge case the v1 masker had to special-case, in one
//! file. Never compiled — consumed by `tests/lexer_fixtures.rs`, which lexes
//! it and asserts (a) the token stream is lossless and (b) none of the
//! rule-bait spelled inside comments and literals is reported.

// A panic!("no") or .unwrap() in a line comment must not count.
/// Doc comments too: x.expect("nope") and thread::spawn(|| {}).
fn comments() -> u32 {
    /* block comment with todo!() inside */
    /* nested /* deeper .unwrap() */ still outer == 1.0 */
    0
}

fn strings() -> &'static str {
    let plain = "contains panic!(no) and .unwrap() but only as text";
    let escaped = "escaped quote \" then .expect(\"x\") stays inside";
    let continued = "a line continuation \
        keeps the string open across the newline: println!(oops)";
    let raw = r#"raw string: unimplemented!( " inner quote "# ;
    let raw_hashes = r##"two "# hashes: thread::scope( "##;
    let byte = b"byte string with dbg!(1) inside";
    let byte_raw = br#"raw byte string: panic!("x")"#;
    let _ = (plain, escaped, continued, raw, raw_hashes, byte, byte_raw);
    "ok"
}

fn chars_and_lifetimes<'a>(x: &'a str) -> char {
    let quote = '"'; // a double-quote char must not open a string
    let escaped_quote = '\''; // escaped single quote
    let newline = '\n';
    let byte_char = b'x';
    let label = 'outer: loop {
        break 'outer;
    };
    let _ = (quote, escaped_quote, newline, byte_char, label, x);
    '?'
}

fn raw_identifiers() -> u32 {
    // `r#type` is a raw identifier, not the start of a raw string.
    let r#type = 1u32;
    let r#fn = 2u32;
    r#type + r#fn
}

fn numeric_soup() -> f64 {
    let range: Vec<u32> = (1..4).collect(); // `1..4` is not a float
    let method = 7u64.max(3); // `7u64.max` is not a float either
    let float = 1.5_f64 + 2e3 + 0x_1f as f64 + 0b1010 as f64 + 0o77 as f64;
    let suffixed = 1f64 + 3.0f32 as f64;
    float + suffixed + range.len() as f64 + method as f64
}

fn unicode_identifiers() -> &'static str {
    let größe = "utf-8 in idents and strings: ≠ ±";
    größe
}
