//! Lint fixture: feature code with a bare float→int cast. The file is named
//! `features.rs` when planted, putting it in `float-cast` scope.

fn bucketize(score: f64, buckets: usize) -> usize {
    (score * buckets as f64) as usize // seeded: float-cast (line 5)
}

fn bucketize_rounded(score: f64, buckets: usize) -> usize {
    (score * buckets as f64).floor() as usize // ok: explicit rounding
}
