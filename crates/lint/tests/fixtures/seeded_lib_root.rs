//! Lint fixture: a crate root missing its deny header and documentation on
//! one public item.

/// Documented and fine.
pub fn documented() -> u32 {
    7
}

pub fn undocumented() -> u32 {
    8 // seeded: undocumented-pub (line 9); missing header: deny-header (line 1)
}
