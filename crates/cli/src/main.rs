//! `friendseeker` — command-line interface for the FriendSeeker
//! reproduction.
//!
//! ```text
//! friendseeker generate --preset gowalla --seed 1 --out-checkins c.txt --out-edges e.txt
//! friendseeker stats c.txt e.txt
//! friendseeker attack --train-checkins c.txt --train-edges e.txt \
//!                     --target-checkins tc.txt --target-edges te.txt
//! friendseeker obfuscate --mode hide --ratio 0.3 c.txt e.txt \
//!                     --out-checkins h.txt --out-edges he.txt
//! ```

#![deny(missing_docs)]

mod args;

use std::process::ExitCode;

use args::{ArgError, Args};
use friendseeker::{pairs, FriendSeeker, FriendSeekerConfig};
use seeker_graph::{analysis, SocialGraph};
use seeker_obfuscation::targeted::{targeted_hide, TargetedHidingConfig};
use seeker_obfuscation::{blur_checkins, hide_checkins, BlurMode};
use seeker_trace::snap::{load_dataset, write_dataset, SnapOptions};
use seeker_trace::stats;
use seeker_trace::synth::{generate, SyntheticConfig};
use seeker_trace::Dataset;

const USAGE: &str = "\
friendseeker — hidden-friendship inference attack toolkit (research reproduction)

USAGE:
  friendseeker generate --preset <gowalla|brightkite|small> [--seed N]
                        --out-checkins FILE --out-edges FILE
  friendseeker stats <checkins> <edges>
  friendseeker attack --train-checkins FILE --train-edges FILE
                      --target-checkins FILE --target-edges FILE
                      [--sigma N] [--tau DAYS] [--dim N] [--epochs N] [--seed N]
                      [--save-model FILE] [--out FILE]
  friendseeker attack --load-model FILE
                      --target-checkins FILE --target-edges FILE [--out FILE]
  friendseeker obfuscate --mode <hide|blur-in|blur-cross|targeted> --ratio R
                      <checkins> <edges> --out-checkins FILE --out-edges FILE
  friendseeker export --what <pois|friendships> <checkins> <edges> --out FILE.geojson
  friendseeker help
";

fn main() -> ExitCode {
    let _obs = seeker_obs::init_cli_sinks();
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let cmd = raw.remove(0);
    let result = match cmd.as_str() {
        "generate" => cmd_generate(raw),
        "stats" => cmd_stats(raw),
        "attack" => cmd_attack(raw),
        "obfuscate" => cmd_obfuscate(raw),
        "export" => cmd_export(raw),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}").into()),
    };
    seeker_obs::flush();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn cmd_generate(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw)?;
    let seed: u64 = a.get_or("seed", 42)?;
    let preset = a.require("preset")?;
    let cfg = match preset {
        "gowalla" => SyntheticConfig::synth_gowalla(seed),
        "brightkite" => SyntheticConfig::synth_brightkite(seed),
        "small" => SyntheticConfig::small(seed),
        other => return Err(ArgError(format!("unknown preset {other:?}")).into()),
    };
    let trace = generate(&cfg)?;
    let checkins = a.require("out-checkins")?;
    let edges = a.require("out-edges")?;
    write_dataset(&trace.dataset, checkins, edges)?;
    println!(
        "wrote {}: {} users, {} check-ins, {} links ({} cyber) -> {checkins} / {edges}",
        trace.dataset.name(),
        trace.dataset.n_users(),
        trace.dataset.n_checkins(),
        trace.dataset.n_links(),
        trace.cyber_edges.len(),
    );
    Ok(())
}

fn load_positional(a: &Args) -> Result<Dataset, Box<dyn std::error::Error>> {
    let pos = a.positionals();
    if pos.len() != 2 {
        return Err(ArgError("expected positional arguments: <checkins> <edges>".into()).into());
    }
    Ok(load_dataset(&pos[0], &pos[1], &SnapOptions::default())?)
}

fn cmd_stats(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw)?;
    let ds = load_positional(&a)?;
    let b = stats::basic_stats(&ds);
    println!("dataset: {}", ds.name());
    println!("  POIs (visited): {}", b.n_pois);
    println!("  users:          {}", b.n_users);
    println!("  check-ins:      {}", b.n_checkins);
    println!("  links:          {}", b.n_links);
    let d = stats::distribution_summary(&ds);
    let (min, med, mean, max) = d.checkins_per_user;
    println!("  check-ins/user: min {min} / median {med} / mean {mean:.1} / max {max}");
    println!("  sparse users (<25 check-ins): {:.1}%", d.sparse_user_fraction * 100.0);
    println!("  observation span: {:.1} days", d.span_days);
    let g = SocialGraph::from_dataset(&ds);
    if let Some(deg) = analysis::degree_stats(&g) {
        println!(
            "  degree: min {} / median {} / mean {:.1} / max {}",
            deg.min, deg.median, deg.mean, deg.max
        );
    }
    let comps = analysis::Components::find(&g);
    println!("  components: {} (largest {})", comps.count(), comps.largest());
    println!("  mean clustering: {:.3}", analysis::mean_clustering(&g));
    if let Some(mspl) = analysis::mean_shortest_path(&g, 30) {
        println!("  mean shortest path (sampled): {mspl:.2}");
    }
    let c = stats::contingency(&ds, 1.0, 7);
    println!(
        "  friends with a co-location: {:.1}%   non-friends: {:.1}%",
        (c.friends.colo_and_cofriend + c.friends.colo_only) * 100.0,
        (c.non_friends.colo_and_cofriend + c.non_friends.colo_only) * 100.0,
    );
    Ok(())
}

fn cmd_attack(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw)?;
    let opts = SnapOptions::default();
    let target = load_dataset(a.require("target-checkins")?, a.require("target-edges")?, &opts)?;
    let trained = if let Some(model_path) = a.get("load-model") {
        eprintln!("loading trained attack from {model_path} ...");
        friendseeker::persist::load(&std::fs::read(model_path)?)?
    } else {
        let train = load_dataset(a.require("train-checkins")?, a.require("train-edges")?, &opts)?;
        let cfg = FriendSeekerConfig {
            sigma: a.get_or("sigma", 150)?,
            tau_days: a.get_or("tau", 7.0)?,
            feature_dim: a.get_or("dim", 128)?,
            epochs: a.get_or("epochs", 15)?,
            seed: a.get_or("seed", 42)?,
            ..FriendSeekerConfig::default()
        };
        cfg.validate().map_err(ArgError)?;
        eprintln!(
            "training on {} users / {} links (sigma={}, tau={}d, d={}) ...",
            train.n_users(),
            train.n_links(),
            cfg.sigma,
            cfg.tau_days,
            cfg.feature_dim
        );
        let trained = FriendSeeker::new(cfg).train(&train)?;
        if let Some(path) = a.get("save-model") {
            std::fs::write(path, friendseeker::persist::save(&trained, train.pois())?)?;
            eprintln!("saved trained attack to {path}");
        }
        trained
    };
    let lp = pairs::labeled_pairs(&target, 1.0, 99);
    let result = trained.infer_pairs(&target, lp.pairs);
    let m = result.evaluate(&target);
    println!("iterations: {}", result.trace.n_iterations());
    println!("predicted friendships: {}", result.final_graph().n_edges());
    println!("F1 = {:.3}  precision = {:.3}  recall = {:.3}", m.f1(), m.precision(), m.recall());
    if let Some(out) = a.get("out") {
        use std::io::Write;
        let mut f = std::io::BufWriter::new(std::fs::File::create(out)?);
        for e in result.final_graph().edges() {
            writeln!(f, "{}\t{}", e.lo().raw(), e.hi().raw())?;
        }
        eprintln!("wrote predicted edges to {out}");
    }
    Ok(())
}

fn cmd_export(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw)?;
    let ds = load_positional(&a)?;
    let out = a.require("out")?;
    let what = a.get("what").unwrap_or("pois");
    let json = match what {
        "pois" => seeker_trace::geojson::pois_to_geojson(&ds),
        "friendships" => {
            let pairs: Vec<_> = ds.friendships().collect();
            seeker_trace::geojson::edges_to_geojson(&ds, &pairs, ds.name())
        }
        other => return Err(ArgError(format!("unknown export target {other:?}")).into()),
    };
    std::fs::write(out, json)?;
    println!("wrote {what} GeoJSON to {out}");
    Ok(())
}

fn cmd_obfuscate(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw)?;
    let ds = load_positional(&a)?;
    let ratio: f64 = a.get_or("ratio", 0.3)?;
    let seed: u64 = a.get_or("seed", 42)?;
    let sigma: usize = a.get_or("sigma", 150)?;
    let mode = a.require("mode")?;
    let defended = match mode {
        "hide" => hide_checkins(&ds, ratio, seed)?,
        "blur-in" => blur_checkins(&ds, ratio, BlurMode::InGrid, sigma, seed)?,
        "blur-cross" => blur_checkins(&ds, ratio, BlurMode::CrossGrid, sigma, seed)?,
        "targeted" => {
            targeted_hide(&ds, &TargetedHidingConfig { budget: ratio, seed, ..Default::default() })?
        }
        other => return Err(ArgError(format!("unknown mode {other:?}")).into()),
    };
    write_dataset(&defended, a.require("out-checkins")?, a.require("out-edges")?)?;
    println!(
        "{mode} at {:.0}%: {} -> {} check-ins",
        ratio * 100.0,
        ds.n_checkins(),
        defended.n_checkins()
    );
    Ok(())
}
