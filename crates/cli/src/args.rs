//! Minimal dependency-free argument parsing: `--key value` flags plus
//! positional arguments, with typed accessors.

use std::collections::BTreeMap;

/// Parsed command-line arguments: flags (`--key value`) and positionals.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct Args {
    flags: BTreeMap<String, String>,
    positionals: Vec<String>,
}

/// A user-facing argument error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ArgError(pub(crate) String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (without the program/subcommand names).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for a trailing `--flag` without a value.
    pub(crate) fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut it = raw.into_iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it.next().ok_or_else(|| {
                    // Startup-only parsing; the hot-path attribution is a
                    // method-name collision on `parse`. lint:allow(hot-alloc)
                    ArgError(format!("flag --{key} is missing its value"))
                })?;
                // lint:allow(hot-alloc) -- same startup-only path as above
                args.flags.insert(key.to_string(), value);
            } else {
                args.positionals.push(a);
            }
        }
        Ok(args)
    }

    /// The positional arguments in order.
    pub(crate) fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// An optional string flag.
    pub(crate) fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when missing.
    pub(crate) fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key).ok_or_else(|| ArgError(format!("missing required flag --{key}")))
    }

    /// An optional typed flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when present but unparsable.
    pub(crate) fn get_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(s) => s
                .parse::<T>()
                .map_err(|_| ArgError(format!("flag --{key} has invalid value {s:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<Args, ArgError> {
        Args::parse(s.iter().map(|x| x.to_string()))
    }

    #[test]
    fn flags_and_positionals() {
        let a = parse(&["--seed", "7", "checkins.txt", "--sigma", "150", "edges.txt"]).unwrap();
        assert_eq!(a.get("seed"), Some("7"));
        assert_eq!(a.get("sigma"), Some("150"));
        assert_eq!(a.positionals(), &["checkins.txt".to_string(), "edges.txt".to_string()]);
    }

    #[test]
    fn typed_access_with_default() {
        let a = parse(&["--seed", "7"]).unwrap();
        assert_eq!(a.get_or("seed", 1u64).unwrap(), 7);
        assert_eq!(a.get_or("sigma", 150usize).unwrap(), 150);
        assert!(a.get_or::<u64>("seed", 0).is_ok());
        let bad = parse(&["--seed", "x"]).unwrap();
        assert!(bad.get_or::<u64>("seed", 0).is_err());
    }

    #[test]
    fn require_reports_missing() {
        let a = parse(&[]).unwrap();
        let err = a.require("out").unwrap_err();
        assert!(err.to_string().contains("--out"));
    }

    #[test]
    fn trailing_flag_without_value_is_an_error() {
        assert!(parse(&["--seed"]).is_err());
    }
}
