//! End-to-end smoke tests of the CLI binary: generate → stats → obfuscate.
//! (The `attack` command is exercised in the workspace examples; it is too
//! slow for the default test profile.)

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_friendseeker"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("seeker_cli_{}_{name}", std::process::id()))
}

#[test]
fn generate_stats_obfuscate_pipeline() {
    let c = tmp("c.txt");
    let e = tmp("e.txt");
    let out = bin()
        .args(["generate", "--preset", "small", "--seed", "5"])
        .args(["--out-checkins", c.to_str().unwrap(), "--out-edges", e.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("60 users"), "unexpected generate output: {stdout}");

    let out = bin()
        .args(["stats", c.to_str().unwrap(), e.to_str().unwrap()])
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("users:          60"));
    assert!(stdout.contains("components:"));

    let dc = tmp("dc.txt");
    let de = tmp("de.txt");
    let out = bin()
        .args(["obfuscate", "--mode", "hide", "--ratio", "0.25"])
        .args([c.to_str().unwrap(), e.to_str().unwrap()])
        .args(["--out-checkins", dc.to_str().unwrap(), "--out-edges", de.to_str().unwrap()])
        .output()
        .expect("run obfuscate");
    assert!(out.status.success(), "obfuscate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(dc.exists() && de.exists());

    for f in [c, e, dc, de] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("USAGE"), "usage text missing: {stderr}");
}

#[test]
fn help_succeeds() {
    let out = bin().arg("help").output().expect("run");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("friendseeker"));
}

#[test]
fn missing_flags_are_reported() {
    let out = bin().args(["generate", "--preset", "small"]).output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--out-checkins"), "got: {stderr}");
}

#[test]
fn bad_preset_is_reported() {
    let out = bin()
        .args(["generate", "--preset", "nope", "--out-checkins", "/tmp/x", "--out-edges", "/tmp/y"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown preset"));
}
