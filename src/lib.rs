//! # friendseeker-repro
//!
//! Workspace umbrella for the FriendSeeker (ICDCS 2023) reproduction. The
//! functionality lives in the member crates:
//!
//! - [`seeker_trace`] — check-in data model, SNAP loader, synthetic traces
//! - [`seeker_spatial`] — quadtree STD and joint occurrence cuboids
//! - [`seeker_graph`] — social graphs and k-hop reachable subgraphs
//! - [`seeker_nn`] — supervised autoencoder and embedding substrate
//! - [`seeker_ml`] — KNN / SVM / metrics substrate
//! - [`friendseeker`] — the two-phase attack itself
//! - [`seeker_baselines`] — the four comparison attacks
//! - [`seeker_obfuscation`] — hiding / blurring countermeasures
//!
//! This crate only hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); see the README for a tour.

#![forbid(unsafe_code)]

pub use friendseeker;
pub use seeker_baselines;
pub use seeker_graph;
pub use seeker_ml;
pub use seeker_nn;
pub use seeker_obfuscation;
pub use seeker_spatial;
pub use seeker_trace;
