//! # friendseeker-repro
//!
//! Workspace umbrella for the FriendSeeker (ICDCS 2023) reproduction. The
//! functionality lives in the member crates:
//!
//! - [`seeker_trace`] — check-in data model, SNAP loader, synthetic traces
//! - [`seeker_spatial`] — quadtree STD and joint occurrence cuboids
//! - [`seeker_graph`] — social graphs and k-hop reachable subgraphs
//! - [`seeker_nn`] — supervised autoencoder and embedding substrate
//! - [`seeker_ml`] — KNN / SVM / metrics substrate
//! - [`friendseeker`] — the two-phase attack itself
//! - [`seeker_baselines`] — the four comparison attacks
//! - [`seeker_obfuscation`] — hiding / blurring countermeasures
//!
//! This crate only hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); see the README for a tour.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// The two-phase FriendSeeker attack.
pub use friendseeker;
/// The four comparison attacks.
pub use seeker_baselines;
/// Social graphs and k-hop subgraphs.
pub use seeker_graph;
/// Classical ML substrate (KNN/SVM/metrics).
pub use seeker_ml;
/// Neural substrate (supervised autoencoder).
pub use seeker_nn;
/// Hiding/blurring countermeasures.
pub use seeker_obfuscation;
/// Quadtree STD and joint occurrence cuboids.
pub use seeker_spatial;
/// Check-in data model and trace generation.
pub use seeker_trace;
