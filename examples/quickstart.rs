//! Quickstart: generate a synthetic mobile-social-network trace, train the
//! FriendSeeker attack on 70 % of the users, and unveil friendships among
//! the held-out 30 %.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use friendseeker::{pairs, FriendSeeker, FriendSeekerConfig};
use seeker_ml::train_test_split;
use seeker_trace::synth::{generate, SyntheticConfig};
use seeker_trace::UserId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic check-in world (the library also loads real SNAP dumps;
    //    see the `real_snap_data` example).
    let trace = generate(&SyntheticConfig::synth_gowalla(7))?;
    let full = trace.dataset;
    println!(
        "generated {}: {} users, {} POIs, {} check-ins, {} friendships",
        full.name(),
        full.n_users(),
        full.n_pois(),
        full.n_checkins(),
        full.n_links()
    );

    // 2. Split users 70/30 into the attacker's labeled data and the target.
    let (train_idx, target_idx) = train_test_split(full.n_users(), 0.3, 1);
    let to_users = |idx: &[usize]| idx.iter().map(|&i| UserId::new(i as u32)).collect::<Vec<_>>();
    let train = full.induced_subset(&to_users(&train_idx), "train")?;
    let target = full.induced_subset(&to_users(&target_idx), "target")?;

    // 3. Train the two-phase attack.
    let cfg = FriendSeekerConfig { sigma: 150, epochs: 15, ..FriendSeekerConfig::default() };
    println!(
        "training FriendSeeker (sigma={}, tau={}d, d={}) ...",
        cfg.sigma, cfg.tau_days, cfg.feature_dim
    );
    let trained = FriendSeeker::new(cfg).train(&train)?;

    // 4. Attack the target over a balanced candidate sample and evaluate
    //    against the ground truth the attacker never saw.
    let lp = pairs::labeled_pairs(&target, 1.0, 99);
    let result = trained.infer_pairs(&target, lp.pairs);
    let m = result.evaluate(&target);
    println!("converged after {} refinement iterations", result.trace.n_iterations());
    println!(
        "target-side results: F1 = {:.3}, precision = {:.3}, recall = {:.3}",
        m.f1(),
        m.precision(),
        m.recall()
    );
    println!(
        "final social graph: {} predicted friendships over {} users",
        result.final_graph().n_edges(),
        target.n_users()
    );
    Ok(())
}
