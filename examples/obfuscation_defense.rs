//! Countermeasure study: how well do hiding and blurring protect friendship
//! privacy against FriendSeeker? (A compact version of Fig. 14–16.)
//!
//! ```sh
//! cargo run --release --example obfuscation_defense
//! ```

use friendseeker::{pairs, FriendSeeker, FriendSeekerConfig};
use seeker_ml::train_test_split;
use seeker_obfuscation::{blur_checkins, hide_checkins, BlurMode};
use seeker_trace::synth::{generate, SyntheticConfig};
use seeker_trace::{Dataset, UserId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = generate(&SyntheticConfig::synth_gowalla(21))?.dataset;
    let (train_idx, target_idx) = train_test_split(full.n_users(), 0.3, 2);
    let to_users = |idx: &[usize]| idx.iter().map(|&i| UserId::new(i as u32)).collect::<Vec<_>>();
    let train = full.induced_subset(&to_users(&train_idx), "train")?;
    let target = full.induced_subset(&to_users(&target_idx), "target")?;
    let cfg = FriendSeekerConfig { sigma: 150, epochs: 12, ..FriendSeekerConfig::default() };

    let attack_f1 =
        |train: &Dataset, target: &Dataset| -> Result<f64, Box<dyn std::error::Error>> {
            let trained = FriendSeeker::new(cfg.clone()).train(train)?;
            let lp = pairs::labeled_pairs(target, 1.0, 17);
            Ok(trained.infer_pairs(target, lp.pairs).evaluate(target).f1())
        };

    println!("baseline (no defense): F1 = {:.3}\n", attack_f1(&train, &target)?);
    println!("{:<22} {:>8} {:>8}", "defense", "ratio", "F1");
    for ratio in [0.25, 0.5] {
        let h_train = hide_checkins(&train, ratio, 1)?;
        let h_target = hide_checkins(&target, ratio, 2)?;
        println!(
            "{:<22} {:>7.0}% {:>8.3}",
            "hiding",
            ratio * 100.0,
            attack_f1(&h_train, &h_target)?
        );

        let b_train = blur_checkins(&train, ratio, BlurMode::InGrid, cfg.sigma, 3)?;
        let b_target = blur_checkins(&target, ratio, BlurMode::InGrid, cfg.sigma, 4)?;
        println!(
            "{:<22} {:>7.0}% {:>8.3}",
            "in-grid blurring",
            ratio * 100.0,
            attack_f1(&b_train, &b_target)?
        );

        let c_train = blur_checkins(&train, ratio, BlurMode::CrossGrid, cfg.sigma, 5)?;
        let c_target = blur_checkins(&target, ratio, BlurMode::CrossGrid, cfg.sigma, 6)?;
        println!(
            "{:<22} {:>7.0}% {:>8.3}",
            "cross-grid blurring",
            ratio * 100.0,
            attack_f1(&c_train, &c_target)?
        );
    }
    println!("\nAs in the paper: obfuscation degrades the attack but none of the");
    println!("mechanisms pushes a learning-based attacker anywhere near chance.");
    Ok(())
}
