//! Running the attack on the real SNAP dumps (Gowalla / Brightkite).
//!
//! The repository ships no trace data; download the check-in and edge files
//! from <https://snap.stanford.edu/data/loc-gowalla.html> or
//! <https://snap.stanford.edu/data/loc-brightkite.html> and pass their paths:
//!
//! ```sh
//! cargo run --release --example real_snap_data -- \
//!     loc-gowalla_totalCheckins.txt loc-gowalla_edges.txt
//! ```
//!
//! Without arguments the example prints usage and demonstrates the loader's
//! round-trip on a synthetic trace exported to SNAP format instead.

use friendseeker::{pairs, FriendSeeker, FriendSeekerConfig};
use seeker_ml::train_test_split;
use seeker_trace::snap::{load_dataset, write_dataset, SnapOptions};
use seeker_trace::synth::{generate, SyntheticConfig};
use seeker_trace::{Dataset, UserId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let dataset: Dataset = match args.as_slice() {
        [_, checkins, edges] => {
            println!("loading SNAP data from {checkins} + {edges} ...");
            load_dataset(
                checkins,
                edges,
                &SnapOptions { name: "snap".into(), ..Default::default() },
            )?
        }
        _ => {
            println!("usage: real_snap_data <checkins.txt> <edges.txt>");
            println!("no files given - demonstrating the SNAP round-trip on synthetic data\n");
            let ds = generate(&SyntheticConfig::small(33))?.dataset;
            let dir = std::env::temp_dir();
            let (cp, ep) = (dir.join("demo_checkins.txt"), dir.join("demo_edges.txt"));
            write_dataset(&ds, &cp, &ep)?;
            println!("exported synthetic trace to {} / {}", cp.display(), ep.display());
            load_dataset(&cp, &ep, &SnapOptions::default())?
        }
    };
    println!(
        "loaded: {} users, {} POIs, {} check-ins, {} links",
        dataset.n_users(),
        dataset.n_pois(),
        dataset.n_checkins(),
        dataset.n_links()
    );

    // For very large dumps, subsample users first (the attack is
    // pair-quadratic); here we keep it simple and cap at 400 users.
    let n = dataset.n_users().min(400);
    let users: Vec<UserId> = (0..n as u32).map(UserId::new).collect();
    let ds = dataset.induced_subset(&users, "capped")?;

    let (train_idx, target_idx) = train_test_split(ds.n_users(), 0.3, 1);
    let to_users = |idx: &[usize]| idx.iter().map(|&i| UserId::new(i as u32)).collect::<Vec<_>>();
    let train = ds.induced_subset(&to_users(&train_idx), "train")?;
    let target = ds.induced_subset(&to_users(&target_idx), "target")?;
    if train.n_links() == 0 || target.n_links() == 0 {
        println!("not enough friendships among the sampled users to train/evaluate");
        return Ok(());
    }

    let cfg = FriendSeekerConfig { sigma: 150, epochs: 12, ..FriendSeekerConfig::default() };
    let trained = FriendSeeker::new(cfg).train(&train)?;
    let lp = pairs::labeled_pairs(&target, 1.0, 9);
    let m = trained.infer_pairs(&target, lp.pairs).evaluate(&target);
    println!("attack F1 on held-out users: {:.3}", m.f1());
    Ok(())
}
