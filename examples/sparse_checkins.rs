//! Sparse check-in robustness: the paper's core claim is that FriendSeeker
//! keeps working when users barely check in. This example buckets target
//! pairs by their combined check-in volume and reports F1 per bucket for
//! FriendSeeker and the distance baseline.
//!
//! ```sh
//! cargo run --release --example sparse_checkins
//! ```

use friendseeker::{pairs, FriendSeeker, FriendSeekerConfig};
use seeker_baselines::{DistanceBaseline, DistanceConfig, FriendshipInference};
use seeker_ml::{train_test_split, BinaryMetrics};
use seeker_trace::synth::{generate, SyntheticConfig};
use seeker_trace::UserId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = generate(&SyntheticConfig::synth_gowalla(13))?.dataset;
    let (train_idx, target_idx) = train_test_split(full.n_users(), 0.3, 3);
    let to_users = |idx: &[usize]| idx.iter().map(|&i| UserId::new(i as u32)).collect::<Vec<_>>();
    let train = full.induced_subset(&to_users(&train_idx), "train")?;
    let target = full.induced_subset(&to_users(&target_idx), "target")?;

    let cfg = FriendSeekerConfig { sigma: 150, epochs: 15, ..FriendSeekerConfig::default() };
    let trained = FriendSeeker::new(cfg).train(&train)?;
    let distance = DistanceBaseline::fit(&DistanceConfig::default(), &train);

    let lp = pairs::labeled_pairs(&target, 1.0, 5);
    let result = trained.infer_pairs(&target, lp.pairs.clone());
    let seeker_preds = result.predictions();
    let distance_preds = distance.predict(&target, &lp.pairs);

    println!("{:<12} {:>8} {:>14} {:>12}", "#check-ins", "pairs", "FriendSeeker", "distance");
    for (lo, hi, label) in
        [(0usize, 24usize, "<25"), (25, 49, "25-49"), (50, 99, "50-99"), (100, usize::MAX, ">=100")]
    {
        let idx: Vec<usize> = (0..lp.pairs.len())
            .filter(|&i| {
                let v =
                    target.checkin_count(lp.pairs[i].lo()) + target.checkin_count(lp.pairs[i].hi());
                v >= lo && v <= hi
            })
            .collect();
        if idx.is_empty() {
            continue;
        }
        let f1 = |preds: &[bool]| {
            let p: Vec<bool> = idx.iter().map(|&i| preds[i]).collect();
            let l: Vec<bool> = idx.iter().map(|&i| lp.labels[i]).collect();
            BinaryMetrics::from_predictions(&p, &l).f1()
        };
        println!(
            "{:<12} {:>8} {:>14.3} {:>12.3}",
            label,
            idx.len(),
            f1(&seeker_preds),
            f1(&distance_preds)
        );
    }
    println!("\nEven the sparsest bucket retains usable attack accuracy — the");
    println!("paper's \"sparse check-in data\" headline scenario.");
    Ok(())
}
