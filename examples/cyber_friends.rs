//! Hidden / cyber friends: the scenario motivating FriendSeeker's second
//! phase. Cyber friends never co-locate — knowledge-based attacks cannot see
//! them at all; FriendSeeker recovers them from the social structure of the
//! graph it inferred in phase 1.
//!
//! ```sh
//! cargo run --release --example cyber_friends
//! ```

use friendseeker::{pairs, FriendSeeker, FriendSeekerConfig};
use seeker_ml::train_test_split;
use seeker_trace::synth::{generate, SyntheticConfig};
use seeker_trace::{UserId, UserPair};
use std::collections::BTreeSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = generate(&SyntheticConfig::synth_brightkite(11))?;
    let full = trace.dataset.clone();
    println!(
        "world: {} friendships, of which {} are cyber (never co-locate)",
        full.n_links(),
        trace.cyber_edges.len()
    );

    let (train_idx, target_idx) = train_test_split(full.n_users(), 0.3, 5);
    let to_users = |idx: &[usize]| idx.iter().map(|&i| UserId::new(i as u32)).collect::<Vec<_>>();
    let target_users = to_users(&target_idx);
    let train = full.induced_subset(&to_users(&train_idx), "train")?;
    let target = full.induced_subset(&target_users, "target")?;

    // Remap the generator's cyber edges into the target's id space.
    let mut remap = std::collections::BTreeMap::new();
    for (new, &old) in target_users.iter().enumerate() {
        remap.insert(old, UserId::new(new as u32));
    }
    let cyber: BTreeSet<UserPair> = trace
        .cyber_edges
        .iter()
        .filter_map(|p| Some(UserPair::new(*remap.get(&p.lo())?, *remap.get(&p.hi())?)))
        .collect();
    println!("{} cyber friendships fall inside the target population", cyber.len());

    let cfg = FriendSeekerConfig { sigma: 150, epochs: 15, ..FriendSeekerConfig::default() };
    let trained = FriendSeeker::new(cfg).train(&train)?;
    let lp = pairs::labeled_pairs(&target, 1.0, 3);
    let result = trained.infer_pairs(&target, lp.pairs.clone());

    // How many friendships with ZERO co-locations does the attack recover —
    // split into phase-1 output (G0) and the final refined graph.
    let g0 = &result.trace.graphs[0];
    let g_final = result.final_graph();
    let mut zero_colo = 0usize;
    let mut zero_colo_hit0 = 0usize;
    let mut zero_colo_hit = 0usize;
    let mut cyber_in_eval = 0usize;
    let mut cyber_hit = 0usize;
    for (&pair, &label) in lp.pairs.iter().zip(lp.labels.iter()) {
        if !label {
            continue;
        }
        if target.colocation_count(pair.lo(), pair.hi()) == 0 {
            zero_colo += 1;
            zero_colo_hit0 += usize::from(g0.has_edge(pair));
            zero_colo_hit += usize::from(g_final.has_edge(pair));
        }
        if cyber.contains(&pair) {
            cyber_in_eval += 1;
            cyber_hit += usize::from(g_final.has_edge(pair));
        }
    }
    println!("\nfriends sharing no common location: {zero_colo}");
    println!(
        "  recovered by phase 1 alone:     {zero_colo_hit0} ({:.1}%)",
        100.0 * zero_colo_hit0 as f64 / zero_colo.max(1) as f64
    );
    println!(
        "  recovered after refinement:     {zero_colo_hit} ({:.1}%)",
        100.0 * zero_colo_hit as f64 / zero_colo.max(1) as f64
    );
    println!(
        "cyber friendships recovered:      {cyber_hit}/{cyber_in_eval} ({:.1}%)",
        100.0 * cyber_hit as f64 / cyber_in_eval.max(1) as f64
    );
    println!("\noverall F1 on the target: {:.3}", result.evaluate(&target).f1());
    Ok(())
}
